(** Standalone crossbar-based [N x N] [k]-wavelength WDM multicast
    networks: one {!Module_fabric} wrapped with the transmitter and
    receiver arrays of Fig. 1.  Instantiating [model] gives exactly the
    fabrics of Fig. 4 (MSW), Fig. 6 (MSDW) and Fig. 7 (MAW); the
    per-model aliases {!Msw_fabric}, {!Msdw_fabric} and {!Maw_fabric}
    expose them through {!Fabric_intf.S}. *)

open Wdm_core

type t

val create :
  ?loss:Wdm_optics.Loss_model.t ->
  ?converter_range:int ->
  model:Model.t ->
  Network_spec.t ->
  t
(** [converter_range]: see {!Module_fabric.build} — limits how far the
    MSDW/MAW converters can retune, degrading realizable capacity. *)

val model : t -> Model.t
val spec : t -> Network_spec.t
val circuit : t -> Wdm_optics.Circuit.t

val configure : t -> Assignment.t -> (unit, Assignment.error) result
(** Validate under the fabric's model, then translate every connection
    into gate/converter settings. *)

val realize :
  t -> Assignment.t -> (Wdm_optics.Circuit.outcome, Delivery.failure) result
(** {!configure}, light every transmitter, propagate, verify delivery. *)

val crosspoints : t -> int
val converters : t -> int
