lib/crossbar/labels.ml: String Wdm_core
