lib/crossbar/space_xbar.mli: Wdm_optics
