lib/crossbar/maw_fabric.ml: Fabric Wdm_core
