lib/crossbar/space_xbar.ml: Array Wdm_optics
