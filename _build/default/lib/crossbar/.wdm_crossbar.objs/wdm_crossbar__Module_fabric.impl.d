lib/crossbar/module_fabric.ml: Array Int List Model Space_xbar Wdm_core Wdm_optics
