lib/crossbar/fabric.mli: Assignment Delivery Model Network_spec Wdm_core Wdm_optics
