lib/crossbar/module_fabric.mli: Wdm_core Wdm_optics
