lib/crossbar/delivery.mli: Assignment Endpoint Format Wdm_core Wdm_optics
