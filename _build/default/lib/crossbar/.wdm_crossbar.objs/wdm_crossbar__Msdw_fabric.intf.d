lib/crossbar/msdw_fabric.mli: Fabric_intf
