lib/crossbar/msw_fabric.ml: Fabric Wdm_core
