lib/crossbar/maw_fabric.mli: Fabric_intf
