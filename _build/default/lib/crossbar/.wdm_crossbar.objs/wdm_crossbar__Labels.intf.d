lib/crossbar/labels.mli: Wdm_core
