lib/crossbar/delivery.ml: Assignment Connection Endpoint Float Format Labels List Map Seq Stdlib String Wdm_core Wdm_optics
