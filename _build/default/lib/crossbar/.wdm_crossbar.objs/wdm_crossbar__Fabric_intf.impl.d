lib/crossbar/fabric_intf.ml: Delivery Wdm_core Wdm_optics
