lib/crossbar/msw_fabric.mli: Fabric_intf
