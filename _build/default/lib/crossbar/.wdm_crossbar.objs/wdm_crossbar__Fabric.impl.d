lib/crossbar/fabric.ml: Array Assignment Connection Delivery Endpoint Labels List Model Module_fabric Network_spec Wdm_core Wdm_optics
