lib/crossbar/msdw_fabric.ml: Fabric Wdm_core
