module C = Wdm_optics.Circuit
open Wdm_core

type t = {
  model : Model.t;
  spec : Network_spec.t;
  circuit : C.t;
  sources : C.node_id array;  (* per input port *)
  core : Module_fabric.t;
}

let create ?loss ?converter_range ~model (spec : Network_spec.t) =
  let n = spec.n and k = spec.k in
  let c = C.create ?loss () in
  let core = Module_fabric.build ?converter_range c ~model ~inputs:n ~outputs:n ~k in
  let sources =
    Array.init n (fun p ->
        let src = C.add_source c (Labels.input_port (p + 1)) in
        let node, slot = Module_fabric.entry core (p + 1) in
        C.connect c src 0 node slot;
        src)
  in
  for p = 1 to n do
    let sink = C.add_sink c (Labels.output_port p) in
    let node, slot = Module_fabric.exit core p in
    C.connect c node slot sink 0
  done;
  { model; spec; circuit = c; sources; core }

let model t = t.model
let spec t = t.spec
let circuit t = t.circuit

let configure t (a : Assignment.t) =
  match Assignment.validate t.spec t.model a with
  | Error _ as e -> e
  | Ok () ->
    Module_fabric.clear t.circuit t.core;
    List.iter
      (fun (conn : Connection.t) ->
        Module_fabric.set_path t.circuit t.core
          ~src:(conn.source.port, conn.source.wl)
          ~dests:
            (List.map (fun (d : Endpoint.t) -> (d.port, d.wl)) conn.destinations))
      a.connections;
    Ok ()

let inject_all t =
  Array.iteri
    (fun p src ->
      let signals =
        List.init t.spec.k (fun w ->
            let e = Endpoint.make ~port:(p + 1) ~wl:(w + 1) in
            Wdm_optics.Signal.inject ~origin:(Labels.origin e) ~wl:(w + 1))
      in
      C.inject t.circuit src signals)
    t.sources

let realize t a =
  match configure t a with
  | Error e -> Error (Delivery.Invalid e)
  | Ok () ->
    inject_all t;
    let outcome = C.propagate t.circuit in
    (match Delivery.verify a outcome with
    | Ok () -> Ok outcome
    | Error _ as e -> e)

let crosspoints t = Module_fabric.crosspoints t.core
let converters t = Module_fabric.converters t.core
