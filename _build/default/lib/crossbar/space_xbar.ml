module C = Wdm_optics.Circuit

type t = {
  n_in : int;
  n_out : int;
  splitters : C.node_id array;  (* per input *)
  combiners : C.node_id array;  (* per output *)
  gates : C.node_id array array;  (* gates.(i).(j) : input i -> output j *)
}

let build c ~inputs ~outputs =
  if inputs < 1 || outputs < 1 then invalid_arg "Space_xbar.build: size >= 1";
  let splitters = Array.init inputs (fun _ -> C.add_splitter c outputs) in
  let combiners = Array.init outputs (fun _ -> C.add_combiner c inputs) in
  let gates =
    Array.init inputs (fun i ->
        Array.init outputs (fun j ->
            let g = C.add_gate c in
            C.connect c splitters.(i) j g 0;
            C.connect c g 0 combiners.(j) i;
            g))
  in
  { n_in = inputs; n_out = outputs; splitters; combiners; gates }

let inputs t = t.n_in
let outputs t = t.n_out

let entry t i =
  if i < 0 || i >= t.n_in then invalid_arg "Space_xbar.entry: bad input";
  (t.splitters.(i), 0)

let exit t j =
  if j < 0 || j >= t.n_out then invalid_arg "Space_xbar.exit: bad output";
  (t.combiners.(j), 0)

let set c t ~input ~output on =
  if input < 0 || input >= t.n_in then invalid_arg "Space_xbar.set: bad input";
  if output < 0 || output >= t.n_out then invalid_arg "Space_xbar.set: bad output";
  C.set_gate c t.gates.(input).(output) on

let clear c t =
  Array.iter (fun row -> Array.iter (fun g -> C.set_gate c g false) row) t.gates

let crosspoints t = t.n_in * t.n_out
