(** A rectangular WDM multicast switching module, embedded in a circuit.

    This is the universal building block of the paper: the [N x N]
    crossbar networks of Figs. 4, 6 and 7 are square instances wrapped
    with transmitters and receivers, and the three-stage networks of
    Fig. 8 wire [n x m], [r x r] and [m x n] instances together.  Each
    port is one fiber carrying [k] wavelengths; the module's model
    decides its internals:

    - MSW: input demultiplexers, [k] parallel space crossbars
      (one per wavelength plane), output multiplexers —
      [k * inputs * outputs] crosspoints, no converters;
    - MSDW: a converter on each input wavelength, then a full
      [(inputs k) x (outputs k)] gate matrix —
      [k^2 * inputs * outputs] crosspoints, [inputs * k] converters;
    - MAW: the same gate matrix with the converters moved behind the
      output combiners — [k^2 * inputs * outputs] crosspoints,
      [outputs * k] converters. *)

module C := Wdm_optics.Circuit

type t

val build :
  ?converter_range:int ->
  C.t ->
  model:Wdm_core.Model.t ->
  inputs:int ->
  outputs:int ->
  k:int ->
  t
(** [converter_range] (default: unlimited) installs limited-range
    wavelength converters: a range-[d] device only shifts a signal by
    up to [d] wavelength positions.  A path needing a longer shift is
    still configurable but fails at propagation time with
    [Conversion_out_of_range] — which is how the capacity degradation
    of sparse conversion is measured. *)

val model : t -> Wdm_core.Model.t
val inputs : t -> int
val outputs : t -> int
val k : t -> int

val entry : t -> int -> C.node_id * int
(** [entry t p]: where the parent connects input fiber [p] (1-based). *)

val exit : t -> int -> C.node_id * int
(** [exit t p]: the slot carrying output fiber [p] (1-based). *)

val set_path : C.t -> t -> src:int * int -> dests:(int * int) list -> unit
(** [set_path c t ~src:(p, w) ~dests] routes the signal arriving on
    wavelength [w] of input fiber [p] to each [(p', w')] destination —
    one multicast connection through the module.  Destinations must obey
    the module's model (same wavelength under MSW, one common wavelength
    under MSDW) and sit on distinct output fibers.
    @raise Invalid_argument on a model violation or bad port/wavelength. *)

val clear : C.t -> t -> unit
(** All gates off, converters to pass-through. *)

val crosspoints : t -> int
val converters : t -> int
