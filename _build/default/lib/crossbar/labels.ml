let input_port p = "in:" ^ string_of_int p
let output_port p = "out:" ^ string_of_int p
let origin = Wdm_core.Endpoint.to_string

let parse_output_port s =
  match String.split_on_char ':' s with
  | [ "out"; p ] -> int_of_string_opt p
  | _ -> None
