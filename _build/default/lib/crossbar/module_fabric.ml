module C = Wdm_optics.Circuit
open Wdm_core

(* Endpoint linearization local to a module: (port, wl) with port in
   1..size, wl in 1..k, index = (port-1)*k + (wl-1). *)
let idx ~k port wl = ((port - 1) * k) + (wl - 1)

type internals =
  | Msw of { planes : Space_xbar.t array (* per wavelength *) }
  | Msdw of {
      input_converters : C.node_id array;  (* per input (port,wl) index *)
      gates : C.node_id array array;  (* gates.(in_idx).(out_idx) *)
    }
  | Maw of {
      output_converters : C.node_id array;  (* per output (port,wl) index *)
      gates : C.node_id array array;
    }

type t = {
  model : Model.t;
  n_in : int;
  n_out : int;
  k : int;
  demuxes : C.node_id array;  (* per input port *)
  muxes : C.node_id array;  (* per output port *)
  internals : internals;
}

let build ?converter_range c ~model ~inputs ~outputs ~k =
  if inputs < 1 || outputs < 1 || k < 1 then
    invalid_arg "Module_fabric.build: sizes and k must be >= 1";
  let demuxes = Array.init inputs (fun _ -> C.add_demux c k) in
  let muxes = Array.init outputs (fun _ -> C.add_mux c k) in
  let internals =
    match (model : Model.t) with
    | MSW ->
      let planes =
        Array.init k (fun wi ->
            let plane = Space_xbar.build c ~inputs ~outputs in
            for p = 0 to inputs - 1 do
              let node, slot = Space_xbar.entry plane p in
              C.connect c demuxes.(p) wi node slot
            done;
            for p = 0 to outputs - 1 do
              let node, slot = Space_xbar.exit plane p in
              C.connect c node slot muxes.(p) wi
            done;
            plane)
      in
      Msw { planes }
    | MSDW | MAW ->
      let nik = inputs * k and nok = outputs * k in
      (* Output side: one combiner per output (port, wl). *)
      let combiners = Array.init nok (fun _ -> C.add_combiner c nik) in
      (* Input side taps, optionally through converters (MSDW). *)
      let input_converters =
        if model = MSDW then
          Array.init nik (fun ii ->
              let port = (ii / k) + 1 and wi = ii mod k in
              let conv = C.add_converter ?range:converter_range c in
              C.connect c demuxes.(port - 1) wi conv 0;
              conv)
        else [||]
      in
      let splitters =
        Array.init nik (fun ii ->
            let spl = C.add_splitter c nok in
            (match model with
            | MSDW -> C.connect c input_converters.(ii) 0 spl 0
            | MSW | MAW ->
              let port = (ii / k) + 1 and wi = ii mod k in
              C.connect c demuxes.(port - 1) wi spl 0);
            spl)
      in
      let gates =
        Array.init nik (fun ii ->
            Array.init nok (fun oi ->
                let g = C.add_gate c in
                C.connect c splitters.(ii) oi g 0;
                C.connect c g 0 combiners.(oi) ii;
                g))
      in
      (match model with
      | MSDW ->
        (* combiner -> mux directly *)
        Array.iteri
          (fun oi comb ->
            let port = (oi / k) + 1 and wi = oi mod k in
            C.connect c comb 0 muxes.(port - 1) wi)
          combiners;
        Msdw { input_converters; gates }
      | MAW ->
        let output_converters =
          Array.init nok (fun oi ->
              let conv = C.add_converter ?range:converter_range c in
              let port = (oi / k) + 1 and wi = oi mod k in
              C.connect c combiners.(oi) 0 conv 0;
              C.connect c conv 0 muxes.(port - 1) wi;
              conv)
        in
        Maw { output_converters; gates }
      | MSW -> assert false)
  in
  { model; n_in = inputs; n_out = outputs; k; demuxes; muxes; internals }

let model t = t.model
let inputs t = t.n_in
let outputs t = t.n_out
let k t = t.k

let entry t p =
  if p < 1 || p > t.n_in then invalid_arg "Module_fabric.entry: bad port";
  (t.demuxes.(p - 1), 0)

let exit t p =
  if p < 1 || p > t.n_out then invalid_arg "Module_fabric.exit: bad port";
  (t.muxes.(p - 1), 0)

let check_endpoint t side (p, w) =
  let limit = match side with `In -> t.n_in | `Out -> t.n_out in
  if p < 1 || p > limit then invalid_arg "Module_fabric.set_path: bad port";
  if w < 1 || w > t.k then invalid_arg "Module_fabric.set_path: bad wavelength"

let set_path c t ~src ~dests =
  check_endpoint t `In src;
  List.iter (check_endpoint t `Out) dests;
  if dests = [] then invalid_arg "Module_fabric.set_path: no destinations";
  let ports = List.map fst dests in
  if List.length (List.sort_uniq Int.compare ports) <> List.length ports then
    invalid_arg "Module_fabric.set_path: repeated destination fiber";
  let sp, sw = src in
  match t.internals with
  | Msw { planes } ->
    if List.exists (fun (_, w) -> w <> sw) dests then
      invalid_arg "Module_fabric.set_path: MSW module cannot convert wavelengths";
    let plane = planes.(sw - 1) in
    List.iter
      (fun (p, _) -> Space_xbar.set c plane ~input:(sp - 1) ~output:(p - 1) true)
      dests
  | Msdw { input_converters; gates } ->
    let wd = match dests with (_, w) :: _ -> w | [] -> assert false in
    if List.exists (fun (_, w) -> w <> wd) dests then
      invalid_arg
        "Module_fabric.set_path: MSDW module needs one common destination \
         wavelength";
    let ii = idx ~k:t.k sp sw in
    C.set_converter c input_converters.(ii) (Some wd);
    List.iter
      (fun (p, w) -> C.set_gate c gates.(ii).(idx ~k:t.k p w) true)
      dests
  | Maw { output_converters; gates } ->
    let ii = idx ~k:t.k sp sw in
    List.iter
      (fun (p, w) ->
        let oi = idx ~k:t.k p w in
        C.set_gate c gates.(ii).(oi) true;
        C.set_converter c output_converters.(oi) (Some w))
      dests

let clear c t =
  match t.internals with
  | Msw { planes } -> Array.iter (Space_xbar.clear c) planes
  | Msdw { input_converters; gates } ->
    Array.iter (fun row -> Array.iter (fun g -> C.set_gate c g false) row) gates;
    Array.iter (fun conv -> C.set_converter c conv None) input_converters
  | Maw { output_converters; gates } ->
    Array.iter (fun row -> Array.iter (fun g -> C.set_gate c g false) row) gates;
    Array.iter (fun conv -> C.set_converter c conv None) output_converters

let crosspoints t =
  match t.internals with
  | Msw { planes } ->
    Array.fold_left (fun acc plane -> acc + Space_xbar.crosspoints plane) 0 planes
  | Msdw { gates; _ } | Maw { gates; _ } ->
    Array.fold_left (fun acc row -> acc + Array.length row) 0 gates

let converters t =
  match t.internals with
  | Msw _ -> 0
  | Msdw { input_converters; _ } -> Array.length input_converters
  | Maw { output_converters; _ } -> Array.length output_converters
