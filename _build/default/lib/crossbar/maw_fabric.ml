(* The MAW crossbar network of Fig. 7 (output-side converters, full
   (Nk)^2 gate matrix): a Module_fabric under MAW with the standard
   transmitter/receiver wrapping. *)

type t = Fabric.t

let model = Wdm_core.Model.MAW
let create ?loss spec = Fabric.create ?loss ~model spec
let spec = Fabric.spec
let circuit = Fabric.circuit
let configure = Fabric.configure
let realize = Fabric.realize
let crosspoints = Fabric.crosspoints
let converters = Fabric.converters
