(* The MSW crossbar network of Fig. 4 (k parallel space crossbars):
   a Module_fabric under MSW with the standard transmitter/receiver
   wrapping.  See Fabric for the mechanics. *)

type t = Fabric.t

let model = Wdm_core.Model.MSW
let create ?loss spec = Fabric.create ?loss ~model spec
let spec = Fabric.spec
let circuit = Fabric.circuit
let configure = Fabric.configure
let realize = Fabric.realize
let crosspoints = Fabric.crosspoints
let converters = Fabric.converters
