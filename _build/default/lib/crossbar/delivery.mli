(** Checking a propagation outcome against a multicast assignment.

    A fabric realizes an assignment when (a) propagation raised no
    optical errors (no combiner collisions, no wavelength clashes),
    (b) every destination endpoint receives exactly the signal injected
    by its connection's source, and (c) nothing else arrives anywhere.
    This is the end-to-end acceptance criterion used by every fabric
    test: routing decisions are only trusted once light actually lands
    where the assignment says. *)

open Wdm_core

type failure =
  | Invalid of Assignment.error  (** the assignment itself was rejected *)
  | Optical of Wdm_optics.Circuit.error list
  | Missing of { destination : Endpoint.t; expected_origin : string }
  | Wrong_origin of { destination : Endpoint.t; expected : string; got : string }
  | Unexpected of { port : int; wl : int; origin : string }
      (** light arrived at an output endpoint no connection targets *)

val verify :
  Assignment.t -> Wdm_optics.Circuit.outcome -> (unit, failure) result
(** Sinks must be labelled with {!Labels.output_port} and signal origins
    with {!Labels.origin} of the source endpoint. *)

val min_power_db : Wdm_optics.Circuit.outcome -> float option
(** Worst delivered signal power, for power-budget reporting. *)

val max_gates_passed : Wdm_optics.Circuit.outcome -> int option
(** Largest number of crosspoints any delivered signal traversed — the
    paper's crosstalk proxy. *)

val worst_crosstalk_margin_db : Wdm_optics.Circuit.outcome -> float option
(** With a leaky loss model ({!Wdm_optics.Loss_model.leaky}) off gates
    pass attenuated crosstalk; this is the worst signal-to-crosstalk
    ratio over all destinations (payload power minus the summed leakage
    power on the same sink and wavelength).  [None] when no destination
    sees any leakage (e.g. ideal gates). *)

val pp_failure : Format.formatter -> failure -> unit
