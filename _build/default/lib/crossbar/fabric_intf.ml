(** The interface every crossbar fabric implements (Figs. 4, 6, 7).

    A fabric is a physical realization of an [N x N] [k]-wavelength
    nonblocking WDM multicast network under one model: [configure]
    translates a multicast assignment into gate and converter settings;
    [realize] additionally propagates light and verifies end-to-end
    delivery.  Nonblocking means [realize] succeeds on {e every}
    assignment that validates under the fabric's model — the crossbar
    tests check that exhaustively for small networks. *)

module type S = sig
  type t

  val model : Wdm_core.Model.t

  val create : ?loss:Wdm_optics.Loss_model.t -> Wdm_core.Network_spec.t -> t
  (** Builds the full fabric for the given dimensions. *)

  val spec : t -> Wdm_core.Network_spec.t
  val circuit : t -> Wdm_optics.Circuit.t

  val configure :
    t -> Wdm_core.Assignment.t -> (unit, Wdm_core.Assignment.error) result
  (** Validates the assignment under the fabric's model, then sets every
      gate and converter.  Leaves the fabric quiescent on error. *)

  val realize :
    t ->
    Wdm_core.Assignment.t ->
    (Wdm_optics.Circuit.outcome, Delivery.failure) result
  (** [configure], inject the full transmitter load, propagate, and
      check delivery; returns the outcome for power/crosstalk reports. *)

  val crosspoints : t -> int
  (** SOA gate count, censused from the built circuit (the tests compare
      it to the paper's closed forms [kN^2] / [k^2N^2]). *)

  val converters : t -> int
end
