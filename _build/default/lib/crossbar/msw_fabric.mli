(** The MSW crossbar network of Fig. 4 (k parallel space crossbars, no converters),
    exposed through {!Fabric_intf.S} so fabrics are interchangeable in
    tests and benchmarks. *)

include Fabric_intf.S
