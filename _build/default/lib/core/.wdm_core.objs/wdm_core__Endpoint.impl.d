lib/core/endpoint.ml: Format Int List Printf Wavelength
