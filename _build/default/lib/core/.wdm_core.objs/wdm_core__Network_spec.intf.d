lib/core/network_spec.mli: Endpoint Format
