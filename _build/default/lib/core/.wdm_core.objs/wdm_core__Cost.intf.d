lib/core/cost.mli: Format Model
