lib/core/cost.ml: Format Model
