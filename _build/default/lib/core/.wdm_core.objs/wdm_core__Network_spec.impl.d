lib/core/network_spec.ml: Endpoint Format Printf
