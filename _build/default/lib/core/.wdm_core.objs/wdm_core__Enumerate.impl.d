lib/core/enumerate.ml: Array Assignment Capacity Endpoint Format Fun Int List Model Network_spec Printf Wdm_bignum
