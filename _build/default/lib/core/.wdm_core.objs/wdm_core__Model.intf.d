lib/core/model.mli: Connection Format
