lib/core/assignment.mli: Connection Endpoint Format Model Network_spec
