lib/core/converters.mli: Assignment Format Model
