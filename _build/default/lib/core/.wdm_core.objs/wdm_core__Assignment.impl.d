lib/core/assignment.ml: Connection Endpoint Format List Map Model Network_spec Result Set
