lib/core/connection.ml: Endpoint Format Int List
