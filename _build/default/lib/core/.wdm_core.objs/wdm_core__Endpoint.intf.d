lib/core/endpoint.mli: Format Wavelength
