lib/core/model.ml: Connection Endpoint Format List Printf String
