lib/core/capacity.ml: Array Combinatorics List Model Nat Wdm_bignum
