lib/core/capacity.mli: Model Nat Wdm_bignum
