lib/core/enumerate.mli: Assignment Model Network_spec
