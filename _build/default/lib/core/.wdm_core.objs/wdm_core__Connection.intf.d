lib/core/connection.mli: Endpoint Format
