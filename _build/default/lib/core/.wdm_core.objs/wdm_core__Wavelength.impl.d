lib/core/wavelength.ml: Format List
