lib/core/converters.ml: Assignment Connection Endpoint Format List Model
