lib/core/wavelength.mli: Format
