type t = MSW | MSDW | MAW

let all = [ MSW; MSDW; MAW ]

let allows m (c : Connection.t) =
  match m with
  | MAW -> true
  | MSDW -> (
    match c.destinations with
    | [] -> true
    | d0 :: rest -> List.for_all (fun (d : Endpoint.t) -> d.wl = d0.wl) rest)
  | MSW ->
    List.for_all (fun (d : Endpoint.t) -> d.wl = c.source.wl) c.destinations

let strength = function MSW -> 0 | MSDW -> 1 | MAW -> 2
let subsumes stronger weaker = strength stronger >= strength weaker

let converters_per_connection m ~fanout =
  match m with MSW -> 0 | MSDW -> 1 | MAW -> fanout

let equal a b = strength a = strength b
let to_string = function MSW -> "MSW" | MSDW -> "MSDW" | MAW -> "MAW"

let of_string s =
  match String.uppercase_ascii s with
  | "MSW" -> Ok MSW
  | "MSDW" -> Ok MSDW
  | "MAW" -> Ok MAW
  | _ -> Error (Printf.sprintf "unknown multicast model %S (expected MSW, MSDW or MAW)" s)

let pp ppf m = Format.pp_print_string ppf (to_string m)
