(** A network endpoint: one wavelength at one port.

    The paper denotes an input wavelength [lambda_l] at input port [i] by
    [(i, lambda_l)]; the same shape addresses output endpoints.  Whether
    an endpoint is an input or an output is contextual (source vs
    destination of a connection). *)

type t = {
  port : int;  (** 1-based port index on its side of the network *)
  wl : Wavelength.t;  (** 1-based wavelength index *)
}

val make : port:int -> wl:Wavelength.t -> t
val equal : t -> t -> bool
val compare : t -> t -> int

val valid : n:int -> k:int -> t -> bool
(** [valid ~n ~k e] checks [1 <= port <= n] and [1 <= wl <= k]. *)

val index : k:int -> t -> int
(** [index ~k e] linearizes endpoints port-major into [0 .. n*k-1]:
    [(port-1) * k + (wl-1)].  Inverse of {!of_index}. *)

val of_index : k:int -> int -> t
(** @raise Invalid_argument on a negative index. *)

val all : n:int -> k:int -> t list
(** All [n*k] endpoints of one network side, in {!index} order. *)

val pp : Format.formatter -> t -> unit
(** Prints as ["(3,l2)"]. *)

val to_string : t -> string
