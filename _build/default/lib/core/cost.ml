let check ~n ~k = if n < 1 || k < 1 then invalid_arg "Cost: n and k must be >= 1"

let crossbar_crosspoints model ~n ~k =
  check ~n ~k;
  match (model : Model.t) with
  | MSW -> k * n * n
  | MSDW | MAW -> k * k * n * n

let crossbar_converters model ~n ~k =
  check ~n ~k;
  match (model : Model.t) with MSW -> 0 | MSDW | MAW -> n * k

let crossbar_splitters _model ~n ~k =
  check ~n ~k;
  n * k

let crossbar_combiners _model ~n ~k =
  check ~n ~k;
  n * k

type summary = {
  model : Model.t;
  n : int;
  k : int;
  crosspoints : int;
  converters : int;
  splitters : int;
  combiners : int;
}

let summarize model ~n ~k =
  {
    model;
    n;
    k;
    crosspoints = crossbar_crosspoints model ~n ~k;
    converters = crossbar_converters model ~n ~k;
    splitters = crossbar_splitters model ~n ~k;
    combiners = crossbar_combiners model ~n ~k;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "%a crossbar %dx%d (k=%d): %d crosspoints, %d converters, %d splitters, \
     %d combiners"
    Model.pp s.model s.n s.n s.k s.crosspoints s.converters s.splitters
    s.combiners
