type t = { n : int; k : int }

let make ~n ~k =
  if n < 1 then Error "Network_spec.make: n must be >= 1"
  else if k < 1 then Error "Network_spec.make: k must be >= 1"
  else Ok { n; k }

let make_exn ~n ~k =
  match make ~n ~k with Ok t -> t | Error msg -> invalid_arg msg

let num_endpoints t = t.n * t.k
let inputs t = Endpoint.all ~n:t.n ~k:t.k
let outputs t = Endpoint.all ~n:t.n ~k:t.k
let valid_endpoint t e = Endpoint.valid ~n:t.n ~k:t.k e
let equal a b = a.n = b.n && a.k = b.k
let pp ppf t = Format.fprintf ppf "%dx%d network, %d wavelengths" t.n t.n t.k

let describe t =
  Printf.sprintf
    "%dx%d WDM network: %d nodes per side, each attached by a fiber carrying \
     %d wavelengths (l1..l%d) and equipped with an array of %d fixed-tuned \
     transmitters/receivers; %d addressable endpoints per side."
    t.n t.n t.n t.k t.k t.k (t.n * t.k)
