(** Wavelength indices.

    A fiber link in an [N x N] [k]-wavelength WDM network carries
    wavelengths [lambda_1 .. lambda_k]; we represent them by their 1-based
    index.  The module exists to give wavelengths a distinct vocabulary
    (and printer) from ports, which are also integers. *)

type t = int
(** 1-based wavelength index, [1 <= t <= k]. *)

val valid : k:int -> t -> bool
(** [valid ~k w] checks [1 <= w <= k]. *)

val all : k:int -> t list
(** [all ~k] is [[1; ...; k]]. *)

val pp : Format.formatter -> t -> unit
(** Prints as ["l3"] (for lambda_3). *)

val to_string : t -> string
