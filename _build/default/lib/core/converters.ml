type placement = None_needed | Input_side | Output_side

let placement = function
  | Model.MSW -> None_needed
  | Model.MSDW -> Input_side
  | Model.MAW -> Output_side

let provisioned model ~n ~k =
  if n < 1 || k < 1 then invalid_arg "Converters.provisioned: n, k >= 1";
  match (model : Model.t) with MSW -> 0 | MSDW | MAW -> n * k

let used_by model (a : Assignment.t) =
  match (model : Model.t) with
  | MSW -> 0
  | MSDW -> List.length a.connections
  | MAW -> Assignment.total_fanout a

let conversions_required (a : Assignment.t) =
  List.fold_left
    (fun acc (c : Connection.t) ->
      acc
      + List.length
          (List.filter (fun (d : Endpoint.t) -> d.wl <> c.source.wl) c.destinations))
    0 a.connections

let pp_placement ppf = function
  | None_needed -> Format.pp_print_string ppf "no converters needed"
  | Input_side -> Format.pp_print_string ppf "input side, before the splitter"
  | Output_side -> Format.pp_print_string ppf "output side, after the combiner"
