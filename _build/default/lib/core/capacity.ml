open Wdm_bignum

let check ~n ~k =
  if n < 1 || k < 1 then invalid_arg "Capacity: n and k must be >= 1"

(* Lemma 1. *)
let msw_full ~n ~k =
  check ~n ~k;
  Combinatorics.power n (n * k)

let msw_any ~n ~k =
  check ~n ~k;
  Combinatorics.power (n + 1) (n * k)

(* Lemma 2. *)
let maw_full ~n ~k =
  check ~n ~k;
  Nat.pow (Combinatorics.falling (n * k) k) n

let maw_any ~n ~k =
  check ~n ~k;
  let per_port =
    List.init (k + 1) (fun j ->
        Nat.mul (Combinatorics.falling (n * k) (k - j)) (Combinatorics.binomial k j))
    |> Nat.sum
  in
  Nat.pow per_port n

(* Lemma 3.  The sum over tuples (j_1..j_k) of
   P(Nk, sum j_i) * prod_i S(N, j_i) factors through the distribution of
   s = sum j_i: convolve the per-wavelength vector v[j] k times to get
   T[s] = sum over tuples with sum s of prod S(N, j_i), then contract
   against P(Nk, s). *)

let convolve a b =
  let la = Array.length a and lb = Array.length b in
  let res = Array.make (la + lb - 1) Nat.zero in
  for i = 0 to la - 1 do
    if not (Nat.is_zero a.(i)) then
      for j = 0 to lb - 1 do
        res.(i + j) <- Nat.add res.(i + j) (Nat.mul a.(i) b.(j))
      done
  done;
  res

let self_convolve v k =
  let rec go acc i = if i = 0 then acc else go (convolve acc v) (i - 1) in
  go v (k - 1)

let contract_with_falling ~nk dist =
  let acc = ref Nat.zero in
  Array.iteri
    (fun s coeff ->
      if not (Nat.is_zero coeff) then
        acc := Nat.add !acc (Nat.mul (Combinatorics.falling nk s) coeff))
    dist;
  !acc

let msdw_full ~n ~k =
  check ~n ~k;
  (* v[j] = S(N, j) for j = 0..N, with j = 0 impossible in a full
     assignment (v[0] = S(N,0) = 0 for N >= 1 already encodes that). *)
  let v = Array.init (n + 1) (fun j -> Combinatorics.stirling2 n j) in
  contract_with_falling ~nk:(n * k) (self_convolve v k)

let msdw_any ~n ~k =
  check ~n ~k;
  (* w[s] = sum_(l=0..N) C(N,l) * S(N-l, s): l receivers of wavelength
     lambda_i idle, the remaining N-l partitioned into s connections. *)
  let w =
    Array.init (n + 1) (fun s ->
        List.init (n + 1) (fun l ->
            Nat.mul (Combinatorics.binomial n l) (Combinatorics.stirling2 (n - l) s))
        |> Nat.sum)
  in
  contract_with_falling ~nk:(n * k) (self_convolve w k)

let full model ~n ~k =
  match (model : Model.t) with
  | MSW -> msw_full ~n ~k
  | MSDW -> msdw_full ~n ~k
  | MAW -> maw_full ~n ~k

let any model ~n ~k =
  match (model : Model.t) with
  | MSW -> msw_any ~n ~k
  | MSDW -> msdw_any ~n ~k
  | MAW -> maw_any ~n ~k

let electronic_full ~n = Combinatorics.power n n
let electronic_any ~n = Combinatorics.power (n + 1) n
let equivalent_electronic_full ~n ~k = Combinatorics.power (n * k) (n * k)
let equivalent_electronic_any ~n ~k = Combinatorics.power ((n * k) + 1) (n * k)
