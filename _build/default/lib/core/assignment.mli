(** Multicast assignments (Section 2).

    A multicast assignment is a set of multicast connections in which no
    input endpoint sources two connections and no output endpoint is the
    destination of two connections.  An assignment is {e full} when every
    output endpoint of the network is in use, and {e partial} otherwise;
    "any-multicast-assignment" covers both.  A nonblocking network under
    a model realizes every assignment legal under that model. *)

type t = { connections : Connection.t list }

type error =
  | Source_reused of Endpoint.t
  | Destination_reused of Endpoint.t
  | Source_out_of_range of Endpoint.t
  | Destination_out_of_range of Endpoint.t
  | Model_violation of { model : Model.t; connection : Connection.t }

val empty : t
val make : Connection.t list -> t
val size : t -> int
val total_fanout : t -> int

val validate : Network_spec.t -> Model.t -> t -> (unit, error) result
(** Checks range of every endpoint, source/destination uniqueness across
    connections, and the wavelength discipline of the model on each
    connection.  [Ok ()] means the assignment is one the network must be
    able to realize if it is nonblocking under [model]. *)

val is_valid : Network_spec.t -> Model.t -> t -> bool

val is_full : Network_spec.t -> t -> bool
(** Every output endpoint of the network is a destination. *)

val used_sources : t -> Endpoint.t list
val used_destinations : t -> Endpoint.t list

val source_of : t -> Endpoint.t -> Endpoint.t option
(** [source_of a out] finds the source whose connection covers output
    endpoint [out], if any. *)

val of_pairs : (Endpoint.t * Endpoint.t) list -> t
(** [of_pairs [(out, src); ...]] groups output endpoints by their source
    endpoint into multicast connections.  Raises [Invalid_argument] if
    grouping puts two destinations of one source on the same output port
    (structurally impossible to express as a connection). *)

val to_pairs : t -> (Endpoint.t * Endpoint.t) list
(** The inverse view: [(destination, source)] pairs, sorted. *)

val equal : t -> t -> bool
(** Equality as a set of connections (order-insensitive). *)

val pp : Format.formatter -> t -> unit
val pp_error : Format.formatter -> error -> unit
