(** The three WDM multicast models of Section 2.1.

    A multicast model specifies which wavelengths a connection may use at
    its source and destinations:

    - {!MSW} (Multicast with Same Wavelength): source and all
      destinations use the same wavelength;
    - {!MSDW} (Multicast with Same Destination Wavelength): all
      destinations share one wavelength, possibly different from the
      source's;
    - {!MAW} (Multicast with Any Wavelength): no wavelength restriction.

    MSW-legal connections are MSDW-legal, and MSDW-legal connections are
    MAW-legal ({!strength} increases in that order).  A traditional
    electronic switching network is the [k = 1] special case of MSW. *)

type t = MSW | MSDW | MAW

val all : t list
(** In increasing strength: [[MSW; MSDW; MAW]]. *)

val allows : t -> Connection.t -> bool
(** [allows m c] checks the wavelength discipline of model [m] on
    connection [c] (structural validity is [c]'s own invariant). *)

val strength : t -> int
(** [MSW -> 0], [MSDW -> 1], [MAW -> 2]; a connection legal under a model
    is legal under every model of greater or equal strength. *)

val subsumes : t -> t -> bool
(** [subsumes stronger weaker] is [strength stronger >= strength weaker]. *)

val converters_per_connection : t -> fanout:int -> int
(** Wavelength converters a single connection needs (Fig. 3): [0] under
    MSW, [1] under MSDW (before the splitter), [fanout] under MAW (one at
    each splitter output). *)

val equal : t -> t -> bool
val to_string : t -> string
val of_string : string -> (t, string) result
val pp : Format.formatter -> t -> unit
