(** Wavelength-converter requirements and placement (Fig. 3, Sec. 2.3.2).

    Converters are the expensive active devices, so the paper tracks
    exactly how many each model needs and where they sit: none under
    MSW; one per connection, in front of the splitter, under MSDW; one
    per splitter output (i.e. per destination) under MAW.  At the
    network level that becomes 0 / [Nk] / [Nk] provisioned units —
    but the number actually {e exercised} by a given assignment differs
    per model, which {!used_by} quantifies. *)

type placement =
  | None_needed  (** MSW: source wavelength survives end to end *)
  | Input_side  (** MSDW: before the splitter, one per input wavelength *)
  | Output_side  (** MAW: after the combiner, one per output wavelength *)

val placement : Model.t -> placement

val provisioned : Model.t -> n:int -> k:int -> int
(** Converters a nonblocking crossbar network must install:
    [0], [Nk], [Nk]. *)

val used_by : Model.t -> Assignment.t -> int
(** Converters actively converting for this assignment if it were
    realized under the given model: [0] under MSW, one per connection
    under MSDW, one per destination under MAW.  (Idle or pass-through
    converters are not counted.) *)

val conversions_required : Assignment.t -> int
(** The number of endpoints whose wavelength differs from their
    connection's source wavelength — a lower bound on active
    conversions any placement must perform. *)

val pp_placement : Format.formatter -> placement -> unit
