(** The dimensions of an [N x N] [k]-wavelength WDM network (Fig. 1).

    Each of the [N] nodes on the input (output) side connects to one
    input (output) port through a fiber carrying [k] wavelengths, and is
    equipped with an array of [k] fixed-tuned transmitters (receivers),
    so a node can take part in up to [k] multicast connections at once. *)

type t = private { n : int; k : int }

val make : n:int -> k:int -> (t, string) result
(** Requires [n >= 1] and [k >= 1]. *)

val make_exn : n:int -> k:int -> t

val num_endpoints : t -> int
(** [n * k], the number of endpoints on each side. *)

val inputs : t -> Endpoint.t list
val outputs : t -> Endpoint.t list
val valid_endpoint : t -> Endpoint.t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val describe : t -> string
(** A short prose rendering of the Fig. 1 structure, used by examples. *)
