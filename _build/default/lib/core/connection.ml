type t = { source : Endpoint.t; destinations : Endpoint.t list }

type error = Empty_destinations | Repeated_destination_port of int

let repeated_port dests =
  let sorted = List.sort Int.compare (List.map (fun (d : Endpoint.t) -> d.port) dests) in
  let rec scan = function
    | a :: (b :: _ as rest) -> if a = b then Some a else scan rest
    | [ _ ] | [] -> None
  in
  scan sorted

let make ~source ~destinations =
  match destinations with
  | [] -> Error Empty_destinations
  | _ -> (
    match repeated_port destinations with
    | Some p -> Error (Repeated_destination_port p)
    | None ->
      Ok { source; destinations = List.sort Endpoint.compare destinations })

let pp_error ppf = function
  | Empty_destinations -> Format.pp_print_string ppf "empty destination set"
  | Repeated_destination_port p ->
    Format.fprintf ppf "two destinations on output port %d" p

let make_exn ~source ~destinations =
  match make ~source ~destinations with
  | Ok c -> c
  | Error e -> invalid_arg (Format.asprintf "Connection.make_exn: %a" pp_error e)

let unicast ~source ~destination =
  { source; destinations = [ destination ] }

let fanout c = List.length c.destinations
let dest_ports c = List.map (fun (d : Endpoint.t) -> d.port) c.destinations

let equal a b =
  Endpoint.equal a.source b.source
  && List.length a.destinations = List.length b.destinations
  && List.for_all2 Endpoint.equal a.destinations b.destinations

let compare a b =
  let c = Endpoint.compare a.source b.source in
  if c <> 0 then c else List.compare Endpoint.compare a.destinations b.destinations

let pp ppf c =
  Format.fprintf ppf "%a -> {%a}" Endpoint.pp c.source
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Endpoint.pp)
    c.destinations
