(** Brute-force census of multicast assignments.

    Ground truth for Lemmas 1-3: every multicast assignment of an
    [N x N] [k]-wavelength network corresponds to exactly one map from
    output endpoints to [source endpoint or idle] that satisfies the
    model's sharing discipline (outputs mapped to the same source form
    one multicast connection).  Enumerating those maps and counting them
    must reproduce the closed-form capacities exactly — the strongest
    possible mechanical check of the paper's combinatorics, feasible for
    small [N, k] (the search space is [(Nk+1)^(Nk)]).

    The per-model sharing disciplines:
    - MSW: an output may only map to a source on its own wavelength;
    - MSDW: outputs sharing a source must carry one common wavelength;
    - MAW: outputs sharing a source must sit on distinct output ports. *)

type counts = { full : int; any : int }

val work_estimate : Network_spec.t -> Model.t -> float
(** Estimated DFS work: the backtracking search only ever stands on
    valid partial maps, so the leaf count — the any-multicast capacity
    of Lemmas 1-3 — is the estimate (internal nodes add a small
    constant factor). *)

val feasible : ?budget:float -> Network_spec.t -> Model.t -> bool
(** Whether a census stays under [budget] visited maps
    (default [5e7]). *)

val census : ?budget:float -> Network_spec.t -> Model.t -> counts
(** Counts valid maps.  @raise Invalid_argument when the network exceeds
    the work budget. *)

val branches : Network_spec.t -> int list
(** The choices for the first output endpoint: [-1] (idle) and each
    source endpoint index.  The census partitions exactly along these,
    which is how it is parallelized: summing {!census_branch} over
    {!branches} equals {!census}. *)

val census_branch :
  ?budget:float -> Network_spec.t -> Model.t -> branch:int -> counts
(** The census restricted to maps whose first output endpoint takes the
    given choice.  Each branch owns all of its state, so distinct
    branches may run on different domains concurrently. *)

val iter_assignments :
  ?budget:float ->
  ?full_only:bool ->
  Network_spec.t ->
  Model.t ->
  (Assignment.t -> unit) ->
  unit
(** Calls the function on every valid assignment (including the empty
    one unless [full_only]).  Used to exhaustively exercise fabric
    constructions on every assignment they must realize. *)
