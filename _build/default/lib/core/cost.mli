(** Crossbar network cost (Section 2.3, summarized in Table 1).

    Cost is measured in crosspoints (SOA gates or MEMS mirrors — a proxy
    for hardware complexity, crosstalk and power loss) and in wavelength
    converters (the expensive active devices).  Splitters and combiners
    are passive glass and are counted separately for completeness. *)

val crossbar_crosspoints : Model.t -> n:int -> k:int -> int
(** [k N^2] under MSW (k parallel space crossbars, Fig. 4);
    [k^2 N^2] under MSDW and MAW (any input wavelength to any output
    wavelength, Figs. 6-7). *)

val crossbar_converters : Model.t -> n:int -> k:int -> int
(** [0] under MSW; [Nk] under MSDW (one per input wavelength, before the
    splitter) and under MAW (one per output wavelength, after the
    combiner). *)

val crossbar_splitters : Model.t -> n:int -> k:int -> int
(** One splitter per input wavelength: [Nk] under every model. *)

val crossbar_combiners : Model.t -> n:int -> k:int -> int
(** One combiner per output wavelength: [Nk] under every model. *)

type summary = {
  model : Model.t;
  n : int;
  k : int;
  crosspoints : int;
  converters : int;
  splitters : int;
  combiners : int;
}

val summarize : Model.t -> n:int -> k:int -> summary
val pp_summary : Format.formatter -> summary -> unit
