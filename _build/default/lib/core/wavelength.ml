type t = int

let valid ~k w = w >= 1 && w <= k
let all ~k = List.init k (fun i -> i + 1)
let to_string w = "l" ^ string_of_int w
let pp ppf w = Format.pp_print_string ppf (to_string w)
