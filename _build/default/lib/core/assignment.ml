type t = { connections : Connection.t list }

type error =
  | Source_reused of Endpoint.t
  | Destination_reused of Endpoint.t
  | Source_out_of_range of Endpoint.t
  | Destination_out_of_range of Endpoint.t
  | Model_violation of { model : Model.t; connection : Connection.t }

let empty = { connections = [] }
let make connections = { connections }
let size a = List.length a.connections
let total_fanout a = List.fold_left (fun s c -> s + Connection.fanout c) 0 a.connections

module Eset = Set.Make (Endpoint)

let used_sources a = List.map (fun (c : Connection.t) -> c.source) a.connections

let used_destinations a =
  List.concat_map (fun (c : Connection.t) -> c.destinations) a.connections

let rec first_error = function
  | [] -> Ok ()
  | f :: rest -> ( match f () with Ok () -> first_error rest | Error _ as e -> e)

let validate spec model a =
  let check_ranges () =
    let rec go = function
      | [] -> Ok ()
      | (c : Connection.t) :: rest ->
        if not (Network_spec.valid_endpoint spec c.source) then
          Error (Source_out_of_range c.source)
        else begin
          match
            List.find_opt
              (fun d -> not (Network_spec.valid_endpoint spec d))
              c.destinations
          with
          | Some d -> Error (Destination_out_of_range d)
          | None -> go rest
        end
    in
    go a.connections
  in
  let check_unique extract err () =
    let rec go seen = function
      | [] -> Ok ()
      | e :: rest ->
        if Eset.mem e seen then Error (err e) else go (Eset.add e seen) rest
    in
    go Eset.empty (extract a)
  in
  let check_model () =
    match
      List.find_opt (fun c -> not (Model.allows model c)) a.connections
    with
    | Some connection -> Error (Model_violation { model; connection })
    | None -> Ok ()
  in
  first_error
    [
      check_ranges;
      check_unique used_sources (fun e -> Source_reused e);
      check_unique used_destinations (fun e -> Destination_reused e);
      check_model;
    ]

let is_valid spec model a = Result.is_ok (validate spec model a)

let is_full spec a =
  let used = Eset.of_list (used_destinations a) in
  List.for_all (fun o -> Eset.mem o used) (Network_spec.outputs spec)

let source_of a out =
  List.find_map
    (fun (c : Connection.t) ->
      if List.exists (Endpoint.equal out) c.destinations then Some c.source
      else None)
    a.connections

module Emap = Map.Make (Endpoint)

let of_pairs pairs =
  let by_source =
    List.fold_left
      (fun m (out, src) ->
        Emap.update src
          (function None -> Some [ out ] | Some outs -> Some (out :: outs))
          m)
      Emap.empty pairs
  in
  let connections =
    Emap.fold
      (fun source destinations acc ->
        Connection.make_exn ~source ~destinations :: acc)
      by_source []
  in
  { connections = List.sort Connection.compare connections }

let to_pairs a =
  a.connections
  |> List.concat_map (fun (c : Connection.t) ->
         List.map (fun d -> (d, c.source)) c.destinations)
  |> List.sort (fun (d1, _) (d2, _) -> Endpoint.compare d1 d2)

let equal a b =
  let norm x = List.sort Connection.compare x.connections in
  List.equal Connection.equal (norm a) (norm b)

let pp ppf a =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list Connection.pp)
    (List.sort Connection.compare a.connections)

let pp_error ppf = function
  | Source_reused e -> Format.fprintf ppf "source %a used twice" Endpoint.pp e
  | Destination_reused e ->
    Format.fprintf ppf "destination %a used twice" Endpoint.pp e
  | Source_out_of_range e ->
    Format.fprintf ppf "source %a out of range" Endpoint.pp e
  | Destination_out_of_range e ->
    Format.fprintf ppf "destination %a out of range" Endpoint.pp e
  | Model_violation { model; connection } ->
    Format.fprintf ppf "connection %a violates model %a" Connection.pp
      connection Model.pp model
