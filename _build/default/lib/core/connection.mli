(** Multicast connections.

    A multicast connection carries the signal of one input endpoint (the
    source) to one or more output endpoints (the destinations).  Section
    2.1 of the paper imposes two structural restrictions, independent of
    the multicast model:

    - no two destinations of one connection may sit on the same output
      port (a port needs at most one copy of a message);
    - a destination endpoint belongs to at most one connection — that is
      an {e assignment}-level restriction checked in {!Assignment}.

    Values of this type are structurally valid by construction: use
    {!make}, which enforces the first restriction, sorts the destination
    list and rejects empty destination sets. *)

type t = private {
  source : Endpoint.t;
  destinations : Endpoint.t list;  (** sorted, distinct output ports *)
}

type error =
  | Empty_destinations
  | Repeated_destination_port of int
      (** the offending output port carried two destinations *)

val make :
  source:Endpoint.t -> destinations:Endpoint.t list -> (t, error) result

val make_exn : source:Endpoint.t -> destinations:Endpoint.t list -> t
(** @raise Invalid_argument on what {!make} reports as [Error]. *)

val unicast : source:Endpoint.t -> destination:Endpoint.t -> t
(** A unicast connection is a multicast connection with fanout one. *)

val fanout : t -> int
val dest_ports : t -> int list
val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints as ["(1,l2) -> {(2,l2); (3,l1)}"]. *)

val pp_error : Format.formatter -> error -> unit
