(** Exact multicast capacities (Section 2.2, Lemmas 1-3).

    The multicast capacity of an [N x N] [k]-wavelength network under a
    model is the number of multicast assignments legal under that model:
    counted either over full assignments (every output endpoint used) or
    over any-assignments (output endpoints may be idle).  All results are
    arbitrary-precision naturals.

    The closed forms:
    - MSW (Lemma 1): [N^(Nk)] full, [(N+1)^(Nk)] any;
    - MAW (Lemma 2): [P(Nk,k)^N] full,
      [(sum_(j=0..k) P(Nk,k-j) C(k,j))^N] any;
    - MSDW (Lemma 3):
      [sum_(1<=j_1..j_k<=N) P(Nk, sum j_i) prod_i S(N, j_i)] full and the
      [l_i]-augmented analogue for any-assignments.

    The MSDW sums over [k]-tuples are evaluated by convolving the
    per-wavelength generating vector [k] times, which reduces the tuple
    sum to [O(k^2 N^2)] bignum operations. *)

open Wdm_bignum

val full : Model.t -> n:int -> k:int -> Nat.t
(** Number of full-multicast-assignments. *)

val any : Model.t -> n:int -> k:int -> Nat.t
(** Number of any-multicast-assignments. *)

val msw_full : n:int -> k:int -> Nat.t
val msw_any : n:int -> k:int -> Nat.t
val msdw_full : n:int -> k:int -> Nat.t
val msdw_any : n:int -> k:int -> Nat.t
val maw_full : n:int -> k:int -> Nat.t
val maw_any : n:int -> k:int -> Nat.t

val electronic_full : n:int -> Nat.t
(** [N^N]: full-multicast capacity of an electronic [N x N] network. *)

val electronic_any : n:int -> Nat.t
(** [(N+1)^N]. *)

val equivalent_electronic_full : n:int -> k:int -> Nat.t
(** [(Nk)^(Nk)]: what an [Nk x Nk] electronic network would offer — the
    paper stresses a [k]-wavelength WDM network is {e not} equivalent to
    it when [k > 1]. *)

val equivalent_electronic_any : n:int -> k:int -> Nat.t
(** [(Nk+1)^(Nk)]. *)
