type t = { port : int; wl : Wavelength.t }

let make ~port ~wl = { port; wl }
let equal a b = a.port = b.port && a.wl = b.wl

let compare a b =
  let c = Int.compare a.port b.port in
  if c <> 0 then c else Int.compare a.wl b.wl

let valid ~n ~k e = e.port >= 1 && e.port <= n && Wavelength.valid ~k e.wl
let index ~k e = ((e.port - 1) * k) + (e.wl - 1)

let of_index ~k i =
  if i < 0 then invalid_arg "Endpoint.of_index: negative";
  { port = (i / k) + 1; wl = (i mod k) + 1 }

let all ~n ~k = List.init (n * k) (of_index ~k)
let to_string e = Printf.sprintf "(%d,%s)" e.port (Wavelength.to_string e.wl)
let pp ppf e = Format.pp_print_string ppf (to_string e)
