type counts = { full : int; any : int }

let work_estimate (spec : Network_spec.t) model =
  let { Network_spec.n; k } = spec in
  Wdm_bignum.Nat.to_float (Capacity.any model ~n ~k)

let feasible ?(budget = 5e7) spec model = work_estimate spec model <= budget

let check_budget budget spec model =
  if not (feasible ~budget spec model) then
    invalid_arg
      (Printf.sprintf
         "Enumerate: census of %s under %s needs ~%.3g candidate maps (budget %.3g)"
         (Format.asprintf "%a" Network_spec.pp spec)
         (Model.to_string model)
         (work_estimate spec model) budget)

(* The DFS walks output endpoints in Endpoint.index order, assigning each
   either "idle" or a source endpoint index, and maintains per-source
   usage summaries sufficient to check every model's sharing discipline
   in O(1): the wavelength first used on that source (for MSDW) and the
   bitmask of output ports already reached (for MAW). *)
let dfs ?(first_branch = fun _ -> true) (spec : Network_spec.t)
    (model : Model.t) ~on_leaf =
  let n = spec.n and k = spec.k in
  let nk = n * k in
  let outputs = Array.of_list (Endpoint.all ~n ~k) in
  let choice = Array.make nk (-1) in
  (* -1 = idle *)
  let src_wl = Array.make nk 0 in
  let src_ports = Array.make nk 0 in
  let src_uses = Array.make nk 0 in
  let compatible s (o : Endpoint.t) =
    match model with
    | MSW ->
      (* Source wavelength must equal the output's wavelength; the caller
         only proposes same-wavelength sources, so sharing is always
         legal (same wavelength forces distinct ports). *)
      true
    | MSDW -> src_uses.(s) = 0 || src_wl.(s) = o.wl
    | MAW -> src_ports.(s) land (1 lsl o.port) = 0
  in
  let take s (o : Endpoint.t) =
    if src_uses.(s) = 0 then src_wl.(s) <- o.wl;
    src_ports.(s) <- src_ports.(s) lor (1 lsl o.port);
    src_uses.(s) <- src_uses.(s) + 1
  in
  let release s (o : Endpoint.t) =
    src_uses.(s) <- src_uses.(s) - 1;
    src_ports.(s) <- src_ports.(s) land lnot (1 lsl o.port);
    if src_uses.(s) = 0 then src_wl.(s) <- 0
  in
  let candidate_sources (o : Endpoint.t) =
    match model with
    | MSW ->
      (* Only sources on the output's own wavelength. *)
      List.init n (fun i -> Endpoint.index ~k { port = i + 1; wl = o.wl })
    | MSDW | MAW -> List.init nk Fun.id
  in
  let rec go i idle_count =
    if i = nk then on_leaf choice ~is_full:(idle_count = 0)
    else begin
      let o = outputs.(i) in
      let allowed c = i > 0 || first_branch c in
      (* idle branch *)
      if allowed (-1) then begin
        choice.(i) <- -1;
        go (i + 1) (idle_count + 1)
      end;
      List.iter
        (fun s ->
          if allowed s && compatible s o then begin
            take s o;
            choice.(i) <- s;
            go (i + 1) idle_count;
            choice.(i) <- -1;
            release s o
          end)
        (candidate_sources o)
    end
  in
  go 0 0

let census ?(budget = 5e7) spec model =
  check_budget budget spec model;
  let full = ref 0 and any = ref 0 in
  dfs spec model ~on_leaf:(fun _choice ~is_full ->
      incr any;
      if is_full then incr full);
  { full = !full; any = !any }

let branches (spec : Network_spec.t) =
  -1 :: List.init (Network_spec.num_endpoints spec) Fun.id

let census_branch ?(budget = 5e7) spec model ~branch =
  check_budget budget spec model;
  let full = ref 0 and any = ref 0 in
  dfs ~first_branch:(Int.equal branch) spec model
    ~on_leaf:(fun _choice ~is_full ->
      incr any;
      if is_full then incr full);
  { full = !full; any = !any }

let iter_assignments ?(budget = 5e7) ?(full_only = false) (spec : Network_spec.t)
    model f =
  check_budget budget spec model;
  let k = spec.k in
  dfs spec model ~on_leaf:(fun choice ~is_full ->
      if is_full || not full_only then begin
        let pairs = ref [] in
        Array.iteri
          (fun i s ->
            if s >= 0 then
              pairs := (Endpoint.of_index ~k i, Endpoint.of_index ~k s) :: !pairs)
          choice;
        f (Assignment.of_pairs !pairs)
      end)
