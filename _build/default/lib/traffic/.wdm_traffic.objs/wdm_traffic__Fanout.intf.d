lib/traffic/fanout.mli: Format Random
