lib/traffic/fanout.ml: Array Format Random Stdlib
