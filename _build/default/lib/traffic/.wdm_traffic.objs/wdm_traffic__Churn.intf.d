lib/traffic/churn.mli: Connection Fanout Format Model Network_spec Random Wdm_core
