lib/traffic/generator.ml: Array Assignment Connection Endpoint Fanout Float Hashtbl Int List Model Network_spec Option Random Set Stdlib Wdm_core
