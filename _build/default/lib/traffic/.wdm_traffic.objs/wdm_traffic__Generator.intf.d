lib/traffic/generator.mli: Assignment Connection Endpoint Fanout Model Network_spec Random Wdm_core
