lib/traffic/churn.ml: Connection Endpoint Float Format Generator List Network_spec Random Set Stdlib Wdm_core
