type t =
  | Fixed of int
  | Uniform of int * int
  | Zipf of { max : int; s : float }
  | Broadcast

let clamp lo hi v = Stdlib.max lo (Stdlib.min hi v)

let sample rng t ~max_available =
  if max_available < 1 then invalid_arg "Fanout.sample: nothing available";
  match t with
  | Fixed f ->
    if f < 1 then invalid_arg "Fanout.sample: Fixed fanout must be >= 1";
    clamp 1 max_available f
  | Uniform (lo, hi) ->
    if lo < 1 || hi < lo then invalid_arg "Fanout.sample: bad Uniform bounds";
    let lo = clamp 1 max_available lo and hi = clamp 1 max_available hi in
    lo + Random.State.int rng (hi - lo + 1)
  | Zipf { max; s } ->
    if max < 1 then invalid_arg "Fanout.sample: Zipf max must be >= 1";
    let max = clamp 1 max_available max in
    (* inverse-CDF sampling over the discrete range *)
    let weights = Array.init max (fun i -> 1. /. (float_of_int (i + 1) ** s)) in
    let total = Array.fold_left ( +. ) 0. weights in
    let u = Random.State.float rng total in
    let rec pick i acc =
      if i >= max - 1 then max
      else begin
        let acc = acc +. weights.(i) in
        if u < acc then i + 1 else pick (i + 1) acc
      end
    in
    pick 0 0.
  | Broadcast -> max_available

let pp ppf = function
  | Fixed f -> Format.fprintf ppf "fixed(%d)" f
  | Uniform (lo, hi) -> Format.fprintf ppf "uniform(%d..%d)" lo hi
  | Zipf { max; s } -> Format.fprintf ppf "zipf(max=%d,s=%.2f)" max s
  | Broadcast -> Format.pp_print_string ppf "broadcast"
