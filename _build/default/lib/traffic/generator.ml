open Wdm_core

let shuffle rng l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let choice rng = function
  | [] -> None
  | l -> Some (List.nth l (Random.State.int rng (List.length l)))

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

(* Ports that still have a free endpoint usable by a connection sourced
   at [src] under [model]; for each, the concrete endpoint to use.
   Grouping goes through a Hashtbl: the churn drivers call this on every
   arrival, and an association list would make each call quadratic in
   the number of free endpoints. *)
let destination_candidates rng model (src : Endpoint.t) free_dests =
  let by_port : (int, Endpoint.t list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (d : Endpoint.t) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_port d.port) in
      Hashtbl.replace by_port d.port (d :: cur))
    free_dests;
  let ports_fold f init = Hashtbl.fold (fun _ dests acc -> f dests acc) by_port init in
  match (model : Model.t) with
  | MSW ->
    ports_fold
      (fun dests acc ->
        match List.find_opt (fun (d : Endpoint.t) -> d.wl = src.wl) dests with
        | Some d -> d :: acc
        | None -> acc)
      []
  | MSDW -> (
    (* choose a destination wavelength offered by as many ports as any *)
    let coverage : (int, int) Hashtbl.t = Hashtbl.create 8 in
    Hashtbl.iter
      (fun _ dests ->
        List.sort_uniq Int.compare (List.map (fun (d : Endpoint.t) -> d.wl) dests)
        |> List.iter (fun w ->
               Hashtbl.replace coverage w
                 (1 + Option.value ~default:0 (Hashtbl.find_opt coverage w))))
      by_port;
    let best = Hashtbl.fold (fun _ c acc -> Stdlib.max c acc) coverage 0 in
    let good =
      Hashtbl.fold (fun w c acc -> if c = best then w :: acc else acc) coverage []
      |> List.sort Int.compare
    in
    match choice rng good with
    | None -> []
    | Some wd ->
      ports_fold
        (fun dests acc ->
          match List.find_opt (fun (d : Endpoint.t) -> d.wl = wd) dests with
          | Some d -> d :: acc
          | None -> acc)
        [])
  | MAW ->
    ports_fold
      (fun dests acc ->
        match shuffle rng dests with d :: _ -> d :: acc | [] -> acc)
      []

let random_connection rng _spec model ~fanout ~free_sources ~free_dests =
  if free_sources = [] || free_dests = [] then None
  else begin
    (* try a few sources; under MSW some may have no same-wavelength
       destination left *)
    let rec attempt tries =
      if tries = 0 then None
      else
        match choice rng free_sources with
        | None -> None
        | Some src -> (
          match destination_candidates rng model src free_dests with
          | [] -> attempt (tries - 1)
          | candidates ->
            let f = Fanout.sample rng fanout ~max_available:(List.length candidates) in
            let dests = take f (shuffle rng candidates) in
            Some (Connection.make_exn ~source:src ~destinations:dests))
    in
    attempt 8
  end

module Eset = Set.Make (Endpoint)

let random_assignment rng (spec : Network_spec.t) model ~fanout ~load =
  if load < 0. || load > 1. then invalid_arg "Generator.random_assignment: load";
  let total = Network_spec.num_endpoints spec in
  let target = int_of_float (Float.round (load *. float_of_int total)) in
  let rec go connections used_src used_dst misses =
    if Eset.cardinal used_dst >= target || misses > 10 then
      Assignment.make connections
    else begin
      let free_sources =
        List.filter (fun e -> not (Eset.mem e used_src)) (Network_spec.inputs spec)
      in
      let free_dests =
        List.filter (fun e -> not (Eset.mem e used_dst)) (Network_spec.outputs spec)
      in
      match random_connection rng spec model ~fanout ~free_sources ~free_dests with
      | None -> go connections used_src used_dst (misses + 1)
      | Some conn ->
        (* cap the connection so we do not badly overshoot the target *)
        let room = target - Eset.cardinal used_dst in
        let conn =
          if Connection.fanout conn <= room then conn
          else
            Connection.make_exn ~source:conn.Connection.source
              ~destinations:(take room conn.Connection.destinations)
        in
        go (conn :: connections)
          (Eset.add conn.Connection.source used_src)
          (List.fold_left (fun s d -> Eset.add d s) used_dst conn.Connection.destinations)
          misses
    end
  in
  go [] Eset.empty Eset.empty 0

(* Sequential random construction of a full assignment: walk the output
   endpoints in random order, give each a compatible source.  For every
   model the same-wavelength sources are always compatible, so the walk
   never gets stuck (see the census disciplines in Wdm_core.Enumerate). *)
let random_full_assignment rng (spec : Network_spec.t) model =
  let outputs = shuffle rng (Network_spec.outputs spec) in
  let sources = Network_spec.inputs spec in
  (* usage per source: wavelengths and ports of outputs already mapped *)
  let used : (Endpoint.t, int list * int list) Hashtbl.t = Hashtbl.create 64 in
  let compatible (o : Endpoint.t) (s : Endpoint.t) =
    match Hashtbl.find_opt used s with
    | None -> (
      match (model : Model.t) with MSW -> s.wl = o.wl | MSDW | MAW -> true)
    | Some (wls, ports) -> (
      match (model : Model.t) with
      | MSW -> s.wl = o.wl
      | MSDW -> List.for_all (fun w -> w = o.wl) wls
      | MAW -> not (List.mem o.port ports))
  in
  let pairs =
    List.map
      (fun (o : Endpoint.t) ->
        let candidates = List.filter (compatible o) sources in
        let s =
          match choice rng candidates with
          | Some s -> s
          | None ->
            (* cannot happen (same-wavelength sources always qualify) *)
            Endpoint.make ~port:o.port ~wl:o.wl
        in
        let wls, ports =
          Option.value ~default:([], []) (Hashtbl.find_opt used s)
        in
        Hashtbl.replace used s (o.wl :: wls, o.port :: ports);
        (o, s))
      outputs
  in
  Assignment.of_pairs pairs
