(** Random multicast workload generation.

    All generators are deterministic functions of a [Random.State.t] so
    experiments are reproducible from a seed.  Requests are generated
    against the {e currently free} endpoints, which is how real traffic
    behaves: a new multicast session can only claim idle receivers. *)

open Wdm_core

val random_connection :
  Random.State.t ->
  Network_spec.t ->
  Model.t ->
  fanout:Fanout.t ->
  free_sources:Endpoint.t list ->
  free_dests:Endpoint.t list ->
  Connection.t option
(** Draw one connection legal under the model whose source is one of
    [free_sources] and whose destinations are among [free_dests] (at
    most one per output port).  [None] when nothing can be built (e.g.
    no free destination matches the source wavelength under MSW). *)

val random_assignment :
  Random.State.t ->
  Network_spec.t ->
  Model.t ->
  fanout:Fanout.t ->
  load:float ->
  Assignment.t
(** Build a valid assignment by repeatedly drawing connections until
    roughly [load] (in [0..1]) of the output endpoints are used or no
    further connection fits.  Always validates under the model. *)

val random_full_assignment :
  Random.State.t -> Network_spec.t -> Model.t -> Assignment.t
(** A full-multicast-assignment: every output endpoint is covered. *)
