(** Fanout distributions for synthetic multicast workloads.

    The paper's motivating applications differ sharply in fanout shape:
    video conferencing produces small groups, video-on-demand produces a
    few very large groups.  These distributions parameterize the
    generators so experiments can sweep over both regimes. *)

type t =
  | Fixed of int
  | Uniform of int * int  (** inclusive bounds *)
  | Zipf of { max : int; s : float }
      (** [P(f) ~ 1/f^s] over [1..max]; heavy head of unicasts with a
          long multicast tail *)
  | Broadcast  (** always the full port range offered *)

val sample : Random.State.t -> t -> max_available:int -> int
(** Draw a fanout, clamped to [1 .. max_available].
    @raise Invalid_argument if [max_available < 1] or the distribution
    is malformed. *)

val pp : Format.formatter -> t -> unit
