.PHONY: all build test bench fmt check

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# @fmt needs ocamlformat, which the sealed build environment may lack;
# skip gracefully rather than failing the whole check.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not found; skipping format check"; \
	fi

check: build test fmt
