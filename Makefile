.PHONY: all build test bench bench-quick fmt check

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# the CI profile: trimmed iteration counts, then schema-check the
# BENCH_results.json it wrote (routing throughput, WAL overhead,
# snapshot/restore timings, recovery digest check)
bench-quick:
	dune exec bench/main.exe -- --quick
	dune exec bench/main.exe -- --validate BENCH_results.json

# @fmt needs ocamlformat, which the sealed build environment may lack;
# skip gracefully rather than failing the whole check.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not found; skipping format check"; \
	fi

check: build test fmt
