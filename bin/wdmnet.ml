(* wdmnet: command-line interface to the WDM multicast switching toolkit.

   Subcommands map to the paper's artifacts:
     capacity  - Lemmas 1-3 for given N, k
     cost      - Table 1 rows (crossbar) for given N, k
     design    - crossbar vs three-stage recommendation (Table 2 workflow)
     tables    - regenerate Tables 1 and 2
     sweep     - theorem bounds / crossover / capacity growth series
     fig10     - play the Fig. 10 scenario
     simulate  - churn a three-stage network and report blocking *)

open Cmdliner
open Wdm_core
open Wdm_multistage
module An = Wdm_analysis
module Tel = Wdm_telemetry
module Mesh = Wdm_mesh.Mesh_network
module Mesh_assign = Wdm_mesh.Assign
module Campaign = Wdm_mesh.Campaign

(* Both engines expose the same Error surface (cause / to_string /
   to_json); every single-request refusal wdmnet renders goes through
   this one function, so the two fabrics read identically. *)
let refusal_to_string = function
  | `Multistage e -> Network.Error.to_string e
  | `Mesh e -> Mesh.Error.to_string e

(* --- shared args ------------------------------------------------------- *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a Chrome trace_event file of the run (open in \
               chrome://tracing or Perfetto).")

(* A sink is created only when some surfacing flag asks for one, so the
   default runs take the un-instrumented (telemetry-free) path. *)
let make_sink ~want_metrics trace_file =
  let trace = Option.map (fun _ -> Tel.Trace.create ()) trace_file in
  let telemetry =
    if want_metrics || trace_file <> None then Some (Tel.Sink.create ?trace ())
    else None
  in
  (telemetry, trace)

let dump_trace trace trace_file =
  match (trace, trace_file) with
  | Some tr, Some file -> write_file file (Tel.Trace.to_chrome tr)
  | _ -> ()

(* --- persistence ------------------------------------------------------- *)

module Persist = Wdm_persist

let wal_arg =
  Arg.(value & opt (some string) None & info [ "wal" ] ~docv:"FILE"
         ~doc:"Record every network op to this write-ahead log, with \
               periodic snapshots beside it ($(docv).snap.N), so the run \
               can be recovered after a crash ($(b,wdmnet recover)).")

let snapshot_every_arg =
  Arg.(value & opt int 1000 & info [ "snapshot-every" ] ~docv:"OPS"
         ~doc:"Checkpoint cadence, in network ops, when --wal is given.")

let check_snapshot_every n =
  if n < 1 then begin
    prerr_endline "wdmnet: snapshot-every must be >= 1";
    exit 2
  end

(* Wraps a SUT so every interaction is journalled: requests (connect,
   disconnect, fault events) before they execute, repairs after, with
   the observed outcome.  Replay re-derives everything else. *)
let logged_sut store (sut : (int, 'err) Wdm_traffic.Churn.sut) =
  {
    Wdm_traffic.Churn.connect =
      (fun c ->
        Persist.Store.log store (Persist.Op.Connect c);
        sut.Wdm_traffic.Churn.connect c);
    disconnect =
      (fun id ->
        Persist.Store.log store (Persist.Op.Disconnect id);
        sut.Wdm_traffic.Churn.disconnect id);
  }

let logged_fsut store (fsut : (int, 'err, _) Wdm_traffic.Churn.faulty_sut) =
  {
    Wdm_traffic.Churn.base = logged_sut store fsut.Wdm_traffic.Churn.base;
    inject =
      (fun f ->
        Persist.Store.log store (Persist.Op.Inject_fault f);
        fsut.Wdm_traffic.Churn.inject f);
    clear =
      (fun f ->
        Persist.Store.log store (Persist.Op.Clear_fault f);
        fsut.Wdm_traffic.Churn.clear f);
    reconnect =
      (fun c ->
        let outcome = fsut.Wdm_traffic.Churn.reconnect c in
        Persist.Store.log store
          (Persist.Op.Repair
             { connection = c; rehomed = Result.is_ok outcome });
        outcome);
  }

let persist_hook store net ~snapshot_every =
  {
    Wdm_traffic.Churn.policy = Wdm_traffic.Churn.Every_n_ops snapshot_every;
    checkpoint = (fun ~ops:_ -> Persist.Store.checkpoint store net);
  }

(* Final checkpoint + digest line; the digest is what `recover
   --expect-digest` (and the CI smoke test) verify against. *)
let finish_store_backend store backend =
  Persist.Store.checkpoint_backend store backend;
  Printf.printf "state digest: %d\n" (Persist.Backend.digest backend);
  Persist.Store.close store

let finish_store store net = finish_store_backend store (Persist.Backend.Net net)

let n_arg =
  Arg.(value & opt int 16 & info [ "n"; "ports" ] ~docv:"N" ~doc:"Ports per side.")

let k_arg =
  Arg.(value & opt int 2 & info [ "k"; "wavelengths" ] ~docv:"K" ~doc:"Wavelengths per fiber.")

let model_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Model.of_string s) in
  Arg.conv (parse, Model.pp)

let model_arg =
  Arg.(value & opt model_conv Model.MAW & info [ "model" ] ~docv:"MODEL"
         ~doc:"Multicast model: MSW, MSDW or MAW.")

let csv_arg =
  Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of aligned text.")

let emit csv table = print_string (if csv then An.Table.to_csv table else An.Table.render table)

let check_dims n k =
  if n < 1 || k < 1 then begin
    prerr_endline "wdmnet: N and K must be >= 1";
    exit 2
  end

(* --- capacity ---------------------------------------------------------- *)

let capacity_cmd =
  let run n k =
    check_dims n k;
    Format.printf "Multicast capacity of a %dx%d %d-wavelength WDM network:\n" n n k;
    List.iter
      (fun m ->
        Format.printf "  %-4s  full: %a   any: %a\n" (Model.to_string m)
          Wdm_bignum.Nat.pp_approx (Capacity.full m ~n ~k)
          Wdm_bignum.Nat.pp_approx (Capacity.any m ~n ~k))
      Model.all;
    Format.printf "  (an %dx%d electronic network would offer %a full)\n" (n * k)
      (n * k) Wdm_bignum.Nat.pp_approx
      (Capacity.equivalent_electronic_full ~n ~k)
  in
  Cmd.v (Cmd.info "capacity" ~doc:"Multicast capacities (Lemmas 1-3).")
    Term.(const run $ n_arg $ k_arg)

(* --- cost -------------------------------------------------------------- *)

let cost_cmd =
  let run n k =
    check_dims n k;
    List.iter
      (fun m -> Format.printf "%a\n" Wdm_core.Cost.pp_summary (Wdm_core.Cost.summarize m ~n ~k))
      Model.all
  in
  Cmd.v (Cmd.info "cost" ~doc:"Crossbar cost (Table 1 rows).")
    Term.(const run $ n_arg $ k_arg)

(* --- design ------------------------------------------------------------ *)

let design_cmd =
  let run n k model =
    check_dims n k;
    let cb = Wdm_core.Cost.summarize model ~n ~k in
    Format.printf "Crossbar: %a\n" Wdm_core.Cost.pp_summary cb;
    match
      Cost.recommended ~construction:Network.Msw_dominant ~output_model:model
        ~big_n:n ~k
    with
    | Error e -> Format.printf "Three-stage: n/a (%s) -> use the crossbar\n" e
    | Ok (topo, eval, b) ->
      Format.printf "Three-stage: %a\n  Theorem 1: m > %.2f at x=%d -> m=%d\n  %a\n"
        Topology.pp topo eval.Conditions.bound eval.Conditions.x
        eval.Conditions.m_min Cost.pp_breakdown b;
      Format.printf "Recommendation: %s\n"
        (if b.Cost.total_crosspoints < cb.Wdm_core.Cost.crosspoints then
           "three-stage (MSW-dominant)"
         else "crossbar")
  in
  Cmd.v (Cmd.info "design" ~doc:"Compare crossbar vs three-stage designs.")
    Term.(const run $ n_arg $ k_arg $ model_arg)

(* --- tables ------------------------------------------------------------ *)

let tables_cmd =
  let run csv =
    emit csv (An.Table1.symbolic ());
    print_newline ();
    emit csv (An.Table1.numeric [ (2, 2); (3, 2); (4, 2); (8, 4); (16, 8) ]);
    print_newline ();
    emit csv (An.Table2.symbolic ());
    print_newline ();
    emit csv (An.Table2.numeric ~big_ns:[ 16; 64; 256; 1024 ] ~ks:[ 2; 4 ])
  in
  Cmd.v (Cmd.info "tables" ~doc:"Regenerate Tables 1 and 2.")
    Term.(const run $ csv_arg)

(* --- sweep ------------------------------------------------------------- *)

let sweep_cmd =
  let what_arg =
    Arg.(
      required
      & pos 0 (some (enum [ ("bounds", `Bounds); ("crossover", `Crossover); ("capacity", `Capacity) ])) None
      & info [] ~docv:"WHAT" ~doc:"One of: bounds, crossover, capacity.")
  in
  let run what k model csv =
    match what with
    | `Bounds ->
      emit csv
        (An.Sweeps.theorem_bounds ~ns:[ 2; 4; 8; 16; 32; 64; 128 ] ~ks:[ 1; 2; 4; 8 ])
    | `Crossover ->
      emit csv (An.Sweeps.crossover ~output_model:model ~k ~max_big_n:1024)
    | `Capacity ->
      emit csv (An.Sweeps.capacity_growth ~k ~ns:[ 2; 4; 8; 16; 32; 64 ])
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Parameter sweeps (theorem bounds, crossover, capacity).")
    Term.(const run $ what_arg $ k_arg $ model_arg $ csv_arg)

(* --- fig10 ------------------------------------------------------------- *)

let fig10_cmd =
  let run () =
    List.iter
      (fun (c, name) ->
        let o = Scenarios.fig10 c in
        Format.printf "%-13s: prelude %d/3, probe %s\n" name o.Scenarios.admitted
          (match o.Scenarios.probe_result with
          | Ok r -> Format.asprintf "ROUTED (%a)" Network.pp_route r
          | Error e -> "BLOCKED (" ^ refusal_to_string (`Multistage e) ^ ")"))
      [ (Network.Msw_dominant, "MSW-dominant"); (Network.Maw_dominant, "MAW-dominant") ]
  in
  Cmd.v (Cmd.info "fig10" ~doc:"Play the Fig. 10 blocking scenario.")
    Term.(const run $ const ())

(* --- simulate ----------------------------------------------------------- *)

let simulate_cmd =
  let m_arg =
    Arg.(value & opt (some int) None & info [ "m" ] ~docv:"M"
           ~doc:"Middle modules; defaults to the theorem minimum.")
  in
  let r_arg =
    Arg.(value & opt int 4 & info [ "r" ] ~docv:"R" ~doc:"Input/output modules.")
  in
  let n_local_arg =
    Arg.(value & opt int 4 & info [ "n-local" ] ~docv:"NL"
           ~doc:"Ports per input/output module.")
  in
  let construction_arg =
    Arg.(
      value
      & opt (enum [ ("msw-dominant", Network.Msw_dominant); ("maw-dominant", Network.Maw_dominant) ])
          Network.Msw_dominant
      & info [ "construction" ] ~docv:"C" ~doc:"msw-dominant or maw-dominant.")
  in
  let steps_arg =
    Arg.(value & opt int 2000 & info [ "steps" ] ~docv:"STEPS" ~doc:"Churn events.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let stats_json_arg =
    Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE"
           ~doc:"Write the final metrics snapshot as JSON.")
  in
  let strategy_arg =
    Arg.(value & opt (some string) None & info [ "strategy" ] ~docv:"S"
           ~doc:"Routing strategy: min-intersection, first-fit, exhaustive, \
                 or any registered plug-in (adaptive, annealed, \
                 crosstalk[:BASE[:DB]]).  Default: min-intersection.")
  in
  let run n r k m construction model steps seed strategy trace_file stats_json
      wal snapshot_every =
    check_dims n k;
    if r < 1 then begin prerr_endline "wdmnet: R must be >= 1"; exit 2 end;
    check_snapshot_every snapshot_every;
    let strategy =
      match strategy with
      | None -> Network.Config.default.Network.Config.strategy
      | Some s -> (
        match Network.strategy_of_string s with
        | Ok s -> s
        | Error e -> prerr_endline ("wdmnet: " ^ e); exit 2)
    in
    let eval =
      match construction with
      | Network.Msw_dominant -> Conditions.msw_dominant ~n ~r
      | Network.Maw_dominant -> Conditions.maw_dominant ~n ~r ~k
    in
    let m = Option.value ~default:eval.Conditions.m_min m in
    let topo = Topology.make_exn ~n ~m ~r ~k in
    Format.printf "topology: %a (theorem m_min = %d)\n" Topology.pp topo
      eval.Conditions.m_min;
    let telemetry, trace = make_sink ~want_metrics:(stats_json <> None) trace_file in
    let net =
      Network.create
        ~config:{ Network.Config.default with telemetry; strategy }
        ~construction ~output_model:model topo
    in
    Format.printf "strategy: %a\n" Network.pp_strategy strategy;
    let sut =
      {
        Wdm_traffic.Churn.connect =
          (fun c ->
            match Network.connect net c with
            | Ok route -> Ok route.Network.id
            | Error e -> Error e);
        disconnect = (fun id -> ignore (Network.disconnect net id));
      }
    in
    let store = Option.map (fun wal -> Persist.Store.start ?telemetry ~wal net) wal in
    let sut = match store with None -> sut | Some st -> logged_sut st sut in
    let persist =
      Option.map (fun st -> persist_hook st net ~snapshot_every) store
    in
    let stats =
      Wdm_traffic.Churn.run ?telemetry ?persist
        (Random.State.make [| seed |])
        ~spec:(Topology.spec topo) ~model
        ~fanout:(Wdm_traffic.Fanout.Zipf { max = n * r; s = 1.1 })
        ~steps ~teardown_bias:0.35 sut
    in
    Format.printf "%a\n" Wdm_traffic.Churn.pp_stats stats;
    Format.printf "final utilization: %.1f%%\n" (100. *. Network.utilization net);
    Option.iter (fun st -> finish_store st net) store;
    (match (telemetry, stats_json) with
    | Some sink, Some file ->
      write_file file
        (Tel.Json.to_string (Tel.Metrics.to_json (Tel.Sink.snapshot sink)))
    | _ -> ());
    dump_trace trace trace_file
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Churn a three-stage network and report blocking.")
    Term.(const run $ n_local_arg $ r_arg $ k_arg $ m_arg $ construction_arg
          $ model_arg $ steps_arg $ seed_arg $ strategy_arg $ trace_arg
          $ stats_json_arg $ wal_arg $ snapshot_every_arg)

(* --- faults -------------------------------------------------------------- *)

let faults_cmd =
  let open Wdm_faults in
  let m_arg =
    Arg.(value & opt (some int) None & info [ "m" ] ~docv:"M"
           ~doc:"Base middle-module count; defaults to the theorem minimum.")
  in
  let r_arg =
    Arg.(value & opt int 4 & info [ "r" ] ~docv:"R" ~doc:"Input/output modules.")
  in
  let n_local_arg =
    Arg.(value & opt int 4 & info [ "n-local" ] ~docv:"NL"
           ~doc:"Ports per input/output module.")
  in
  let construction_arg =
    Arg.(
      value
      & opt (enum [ ("msw-dominant", Network.Msw_dominant); ("maw-dominant", Network.Maw_dominant) ])
          Network.Msw_dominant
      & info [ "construction" ] ~docv:"C" ~doc:"msw-dominant or maw-dominant.")
  in
  let steps_arg =
    Arg.(value & opt int 5000 & info [ "steps" ] ~docv:"STEPS" ~doc:"Churn events per row.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let mtbf_arg =
    Arg.(value & opt float 1000. & info [ "mtbf" ] ~docv:"STEPS"
           ~doc:"Mean steps between failures, per component.")
  in
  let mttr_arg =
    Arg.(value & opt float 400. & info [ "mttr" ] ~docv:"STEPS"
           ~doc:"Mean steps to repair a failed component.")
  in
  let slack_arg =
    Arg.(value & opt int 2 & info [ "slack-max" ] ~docv:"F"
           ~doc:"Rows for slack f = 0 .. F extra middle modules.")
  in
  let class_arg =
    Arg.(
      value
      & opt (enum [ ("middle", `Middle); ("laser", `Laser); ("converter", `Converter);
                    ("module", `Module); ("all", `All) ]) `Middle
      & info [ "class" ] ~docv:"CLASS"
          ~doc:"Fault classes drawn by the campaign: middle, laser, converter, module or all.")
  in
  let run n r k m construction model steps seed mtbf mttr slack_max klass csv
      trace_file wal snapshot_every =
    check_dims n k;
    if r < 1 then begin prerr_endline "wdmnet: R must be >= 1"; exit 2 end;
    check_snapshot_every snapshot_every;
    if slack_max < 0 then begin prerr_endline "wdmnet: slack-max must be >= 0"; exit 2 end;
    if mtbf <= 0. || mttr <= 0. then begin
      prerr_endline "wdmnet: mtbf and mttr must be positive"; exit 2
    end;
    if steps < 0 then begin prerr_endline "wdmnet: steps must be >= 0"; exit 2 end;
    let eval =
      match construction with
      | Network.Msw_dominant -> Conditions.msw_dominant ~n ~r
      | Network.Maw_dominant -> Conditions.maw_dominant ~n ~r ~k
    in
    let base_m = Option.value ~default:eval.Conditions.m_min m in
    Format.printf
      "Fault-injection campaign: n=%d r=%d k=%d, base m=%d (theorem m_min=%d), \
       %d steps, mtbf=%.0f mttr=%.0f, seed %d\n"
      n r k base_m eval.Conditions.m_min steps mtbf mttr seed;
    let table =
      An.Table.make ~title:"Degradation under component faults"
        ~header:
          [ "slack"; "m"; "injected"; "teardowns"; "repaired"; "dropped";
            "unserviceable"; "blocked"; "degraded-blocked"; "degraded-rate" ]
        ()
    in
    (* One trace spans the whole campaign; each slack row gets a fresh
       sink so its snapshot covers exactly that row's run. *)
    let trace = Option.map (fun _ -> Tel.Trace.create ()) trace_file in
    for f = 0 to slack_max do
      let m = base_m + f in
      let topo = Topology.make_exn ~n ~m ~r ~k in
      let sink = Tel.Sink.create ?trace () in
      let net =
        Network.create
          ~config:{ Network.Config.default with telemetry = Some sink }
          ~construction ~output_model:model topo
      in
      let universe =
        let keep fault =
          match (klass, fault) with
          | `All, _ -> true
          | `Middle, Fault.Middle _ -> true
          | `Laser, (Fault.Stage1_laser _ | Fault.Stage2_laser _) -> true
          | `Converter, Fault.Converter _ -> true
          | `Module, (Fault.Input_module _ | Fault.Output_module _) -> true
          | _ -> false
        in
        List.filter keep (Fault.universe ~m ~r ~k)
      in
      let schedule =
        Schedule.generate
          ~rng:(Random.State.make [| seed; 0xfa; f |])
          ~universe ~mtbf ~mttr ~steps
        |> List.map (fun { Schedule.step; action } ->
               match action with
               | Schedule.Inject fault -> (step, `Inject fault)
               | Schedule.Clear fault -> (step, `Clear fault))
      in
      let fsut =
        {
          Wdm_traffic.Churn.base =
            {
              Wdm_traffic.Churn.connect =
                (fun c ->
                  match Network.connect net c with
                  | Ok route -> Ok route.Network.id
                  | Error e -> Error e);
              (* a teardown of an id the driver believes active must
                 succeed; a stale id means leaked capacity and a
                 corrupted degradation table, so fail the campaign *)
              disconnect =
                (fun id ->
                  match Network.disconnect net id with
                  | Ok _ -> ()
                  | Error e -> failwith (Network.Error.disconnect_to_string e));
            };
          inject = Network.inject_fault net;
          clear = Network.clear_fault net;
          reconnect =
            (fun c ->
              match Network.connect_rearrangeable net c with
              | Ok (route, _) -> Ok route.Network.id
              | Error e -> Error e);
        }
      in
      (* each slack row is an independent run, so it records into its
         own WAL (and snapshot chain) under a .fN suffix *)
      let store =
        Option.map
          (fun wal ->
            Persist.Store.start ~telemetry:sink
              ~wal:(Printf.sprintf "%s.f%d" wal f)
              net)
          wal
      in
      let fsut = match store with None -> fsut | Some st -> logged_fsut st fsut in
      let persist =
        Option.map (fun st -> persist_hook st net ~snapshot_every) store
      in
      let (_ : Wdm_traffic.Churn.fault_stats) =
        Wdm_traffic.Churn.run_with_faults ~telemetry:sink ?persist
          (Random.State.make [| seed |])
          ~spec:(Topology.spec topo) ~model
          ~fanout:(Wdm_traffic.Fanout.Zipf { max = n * r; s = 1.1 })
          ~steps ~teardown_bias:0.35 ~schedule fsut
      in
      Option.iter (fun st -> finish_store st net) store;
      (* The row is read back from the metrics snapshot: the driver's
         tallies ARE the telemetry counters, so there is no second set
         of books to keep in sync. *)
      let snap = Tel.Sink.snapshot sink in
      let c name = Option.value ~default:0 (Tel.Metrics.find_counter snap name) in
      let degraded_attempts = c "churn_degraded_attempts_total" in
      let blocked_degraded = c "churn_blocked_degraded_total" in
      An.Table.add_row table
        [
          string_of_int f; string_of_int m;
          string_of_int (c "churn_faults_injected_total");
          string_of_int (c "wdmnet_fault_teardowns_total");
          string_of_int (c "churn_repaired_total");
          string_of_int (c "churn_dropped_total");
          string_of_int (c "wdmnet_connect_blocked_total{cause=\"unserviceable\"}");
          string_of_int (c "churn_blocked_total");
          string_of_int blocked_degraded;
          (if degraded_attempts = 0 then "n/a"
           else
             Printf.sprintf "%.2f%%"
               (100. *. float_of_int blocked_degraded
               /. float_of_int degraded_attempts));
        ]
    done;
    emit csv table;
    dump_trace trace trace_file
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Fault-injection campaign: degraded-mode blocking vs middle-stage slack.")
    Term.(const run $ n_local_arg $ r_arg $ k_arg $ m_arg $ construction_arg
          $ model_arg $ steps_arg $ seed_arg $ mtbf_arg $ mttr_arg $ slack_arg
          $ class_arg $ csv_arg $ trace_arg $ wal_arg $ snapshot_every_arg)

(* --- stats --------------------------------------------------------------- *)

let stats_cmd =
  let m_arg =
    Arg.(value & opt (some int) None & info [ "m" ] ~docv:"M"
           ~doc:"Middle modules; defaults to the theorem minimum.")
  in
  let r_arg =
    Arg.(value & opt int 4 & info [ "r" ] ~docv:"R" ~doc:"Input/output modules.")
  in
  let n_local_arg =
    Arg.(value & opt int 4 & info [ "n-local" ] ~docv:"NL"
           ~doc:"Ports per input/output module.")
  in
  let construction_arg =
    Arg.(
      value
      & opt (enum [ ("msw-dominant", Network.Msw_dominant); ("maw-dominant", Network.Maw_dominant) ])
          Network.Msw_dominant
      & info [ "construction" ] ~docv:"C" ~doc:"msw-dominant or maw-dominant.")
  in
  let steps_arg =
    Arg.(value & opt int 2000 & info [ "steps" ] ~docv:"STEPS" ~doc:"Churn events.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the snapshot as JSON.")
  in
  let prometheus_arg =
    Arg.(value & flag & info [ "prometheus" ]
           ~doc:"Emit the snapshot in Prometheus text exposition format.")
  in
  let faults_flag =
    Arg.(value & flag & info [ "faults" ]
           ~doc:"Drive the workload through the fault-injection campaign \
                 (middle-module faults, mtbf 1000, mttr 400) instead of \
                 plain churn, so the fault/repair counter families are \
                 exercised too.")
  in
  let run n r k m construction model steps seed json prometheus with_faults
      trace_file =
    check_dims n k;
    if r < 1 then begin prerr_endline "wdmnet: R must be >= 1"; exit 2 end;
    if json && prometheus then begin
      prerr_endline "wdmnet: --json and --prometheus are mutually exclusive";
      exit 2
    end;
    let eval =
      match construction with
      | Network.Msw_dominant -> Conditions.msw_dominant ~n ~r
      | Network.Maw_dominant -> Conditions.maw_dominant ~n ~r ~k
    in
    let m = Option.value ~default:eval.Conditions.m_min m in
    let topo = Topology.make_exn ~n ~m ~r ~k in
    let trace = Option.map (fun _ -> Tel.Trace.create ()) trace_file in
    let sink = Tel.Sink.create ?trace () in
    let net =
      Network.create
        ~config:{ Network.Config.default with telemetry = Some sink }
        ~construction ~output_model:model topo
    in
    let sut =
      {
        Wdm_traffic.Churn.connect =
          (fun c ->
            match Network.connect net c with
            | Ok route -> Ok route.Network.id
            | Error e -> Error e);
        disconnect = (fun id -> ignore (Network.disconnect net id));
      }
    in
    let fanout = Wdm_traffic.Fanout.Zipf { max = n * r; s = 1.1 } in
    (if with_faults then begin
       let open Wdm_faults in
       let schedule =
         Schedule.generate
           ~rng:(Random.State.make [| seed; 0xfa |])
           ~universe:
             (List.filter
                (function Fault.Middle _ -> true | _ -> false)
                (Fault.universe ~m ~r ~k))
           ~mtbf:1000. ~mttr:400. ~steps
         |> List.map (fun { Schedule.step; action } ->
                match action with
                | Schedule.Inject fault -> (step, `Inject fault)
                | Schedule.Clear fault -> (step, `Clear fault))
       in
       let fsut =
         {
           Wdm_traffic.Churn.base = sut;
           inject = Network.inject_fault net;
           clear = Network.clear_fault net;
           reconnect =
             (fun c ->
               match Network.connect_rearrangeable net c with
               | Ok (route, _) -> Ok route.Network.id
               | Error e -> Error e);
         }
       in
       let (_ : Wdm_traffic.Churn.fault_stats) =
         Wdm_traffic.Churn.run_with_faults ~telemetry:sink
           (Random.State.make [| seed |])
           ~spec:(Topology.spec topo) ~model ~fanout ~steps ~teardown_bias:0.35
           ~schedule fsut
       in
       ()
     end
     else
       let (_ : Wdm_traffic.Churn.stats) =
         Wdm_traffic.Churn.run ~telemetry:sink
           (Random.State.make [| seed |])
           ~spec:(Topology.spec topo) ~model ~fanout ~steps ~teardown_bias:0.35
           sut
       in
       ());
    let snap = Tel.Sink.snapshot sink in
    if json then print_string (Tel.Json.to_string (Tel.Metrics.to_json snap))
    else if prometheus then print_string (Tel.Metrics.to_prometheus snap)
    else Format.printf "%a" Tel.Metrics.pp_text snap;
    dump_trace trace trace_file
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run a seeded workload and print the telemetry snapshot (text \
             table, --json, or --prometheus).")
    Term.(const run $ n_local_arg $ r_arg $ k_arg $ m_arg $ construction_arg
          $ model_arg $ steps_arg $ seed_arg $ json_arg $ prometheus_arg
          $ faults_flag $ trace_arg)

(* --- record / recover ---------------------------------------------------- *)

let record_cmd =
  let open Wdm_faults in
  let m_arg =
    Arg.(value & opt (some int) None & info [ "m" ] ~docv:"M"
           ~doc:"Middle modules; defaults to the theorem minimum.")
  in
  let r_arg =
    Arg.(value & opt int 4 & info [ "r" ] ~docv:"R" ~doc:"Input/output modules.")
  in
  let n_local_arg =
    Arg.(value & opt int 4 & info [ "n-local" ] ~docv:"NL"
           ~doc:"Ports per input/output module.")
  in
  let construction_arg =
    Arg.(
      value
      & opt (enum [ ("msw-dominant", Network.Msw_dominant); ("maw-dominant", Network.Maw_dominant) ])
          Network.Msw_dominant
      & info [ "construction" ] ~docv:"C" ~doc:"msw-dominant or maw-dominant.")
  in
  let steps_arg =
    Arg.(value & opt int 2000 & info [ "steps" ] ~docv:"STEPS" ~doc:"Churn events.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let wal_req_arg =
    Arg.(required & opt (some string) None & info [ "wal" ] ~docv:"FILE"
           ~doc:"Write-ahead log to record into (snapshots land beside it \
                 as $(docv).snap.N).")
  in
  let fsync_every_arg =
    Arg.(value & opt (some int) None & info [ "fsync-every" ] ~docv:"N"
           ~doc:"fsync the WAL every N records (default: flush to the OS \
                 after every record, no fsync).")
  in
  let faults_flag =
    Arg.(value & flag & info [ "with-faults" ]
           ~doc:"Drive the workload through the fault-injection campaign \
                 (middle-module faults, mtbf 1000, mttr 400), so the WAL \
                 carries inject/clear/repair records too.")
  in
  let run n r k m construction model steps seed wal snapshot_every fsync_every
      with_faults =
    check_dims n k;
    if r < 1 then begin prerr_endline "wdmnet: R must be >= 1"; exit 2 end;
    check_snapshot_every snapshot_every;
    let policy =
      match fsync_every with
      | None -> None
      | Some fe ->
        if fe < 1 then begin
          prerr_endline "wdmnet: fsync-every must be >= 1";
          exit 2
        end;
        Some (Persist.Wal.Fsync_every fe)
    in
    let eval =
      match construction with
      | Network.Msw_dominant -> Conditions.msw_dominant ~n ~r
      | Network.Maw_dominant -> Conditions.maw_dominant ~n ~r ~k
    in
    let m = Option.value ~default:eval.Conditions.m_min m in
    let topo = Topology.make_exn ~n ~m ~r ~k in
    Format.printf "topology: %a, recording to %s\n" Topology.pp topo wal;
    let net = Network.create ~construction ~output_model:model topo in
    let store = Persist.Store.start ?policy ~wal net in
    let sut =
      logged_sut store
        {
          Wdm_traffic.Churn.connect =
            (fun c ->
              match Network.connect net c with
              | Ok route -> Ok route.Network.id
              | Error e -> Error e);
          disconnect = (fun id -> ignore (Network.disconnect net id));
        }
    in
    let persist = Some (persist_hook store net ~snapshot_every) in
    let fanout = Wdm_traffic.Fanout.Zipf { max = n * r; s = 1.1 } in
    let rng = Random.State.make [| seed |] in
    (if with_faults then begin
       let schedule =
         Schedule.generate
           ~rng:(Random.State.make [| seed; 0xfa |])
           ~universe:
             (List.filter
                (function Fault.Middle _ -> true | _ -> false)
                (Fault.universe ~m ~r ~k))
           ~mtbf:1000. ~mttr:400. ~steps
         |> List.map (fun { Schedule.step; action } ->
                match action with
                | Schedule.Inject fault -> (step, `Inject fault)
                | Schedule.Clear fault -> (step, `Clear fault))
       in
       let fsut =
         logged_fsut store
           {
             Wdm_traffic.Churn.base =
               {
                 Wdm_traffic.Churn.connect =
                   (fun c ->
                     match Network.connect net c with
                     | Ok route -> Ok route.Network.id
                     | Error e -> Error e);
                 disconnect = (fun id -> ignore (Network.disconnect net id));
               };
             inject = Network.inject_fault net;
             clear = Network.clear_fault net;
             reconnect =
               (fun c ->
                 match Network.connect_rearrangeable net c with
                 | Ok (route, _) -> Ok route.Network.id
                 | Error e -> Error e);
           }
       in
       let stats =
         Wdm_traffic.Churn.run_with_faults ?persist rng
           ~spec:(Topology.spec topo) ~model ~fanout ~steps ~teardown_bias:0.35
           ~schedule fsut
       in
       Format.printf "%a\n" Wdm_traffic.Churn.pp_fault_stats stats
     end
     else
       let stats =
         Wdm_traffic.Churn.run ?persist rng ~spec:(Topology.spec topo) ~model
           ~fanout ~steps ~teardown_bias:0.35 sut
       in
       Format.printf "%a\n" Wdm_traffic.Churn.pp_stats stats);
    Printf.printf "wal: %d records, %d bytes\n"
      (Persist.Store.wal_records store)
      (Persist.Store.wal_offset store);
    finish_store store net
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:"Churn a network while journalling every op to a WAL with \
             periodic snapshots; the printed state digest is what \
             $(b,wdmnet recover --expect-digest) verifies.")
    Term.(const run $ n_local_arg $ r_arg $ k_arg $ m_arg $ construction_arg
          $ model_arg $ steps_arg $ seed_arg $ wal_req_arg $ snapshot_every_arg
          $ fsync_every_arg $ faults_flag)

let recover_cmd =
  let wal_req_arg =
    Arg.(required & opt (some string) None & info [ "wal" ] ~docv:"FILE"
           ~doc:"Write-ahead log to recover from (snapshots are found \
                 beside it).")
  in
  let expect_arg =
    Arg.(value & opt (some int) None & info [ "expect-digest" ] ~docv:"D"
           ~doc:"Fail unless the recovered state digest equals $(docv) \
                 (the value $(b,wdmnet record) printed).")
  in
  let keep_tear_arg =
    Arg.(value & flag & info [ "keep-tear" ]
           ~doc:"Report a torn trailing record but leave the file as-is \
                 instead of truncating it.")
  in
  let run wal expect keep_tear =
    match Persist.Store.recover_backend ~truncate:(not keep_tear) ~wal () with
    | Error e ->
      Format.eprintf "wdmnet: recovery failed: %a@." Persist.Store.pp_recovery_error e;
      exit 1
    | Ok r ->
      Printf.printf "recovered from snapshot %d (WAL offset %d), replayed %d ops\n"
        r.Persist.Store.b_snapshot_seq r.Persist.Store.b_snapshot_offset
        r.Persist.Store.b_replayed;
      (match r.Persist.Store.b_tear with
      | Some at ->
        Printf.printf "torn trailing record at byte %d%s\n" at
          (if keep_tear then " (kept)" else " (truncated)")
      | None -> ());
      (match r.Persist.Store.backend with
      | Persist.Backend.Net net ->
        let snap = Network.snapshot net in
        Printf.printf "active routes: %d, faults in force: %d\n"
          (List.length snap.Network.s_routes)
          (List.length snap.Network.s_faults)
      | Persist.Backend.Mesh mesh ->
        Printf.printf "mesh %s: active routes: %d, utilization: %.3f\n"
          (Mesh.topology_name mesh) (Mesh.active_count mesh)
          (Mesh.utilization mesh));
      let digest = Persist.Backend.digest r.Persist.Store.backend in
      Printf.printf "state digest: %d\n" digest;
      match expect with
      | Some d when d <> digest ->
        Printf.eprintf "wdmnet: state digest mismatch (expected %d, got %d)\n" d
          digest;
        exit 1
      | _ -> ()
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Rebuild a network from its newest valid snapshot plus the WAL \
             tail, truncating a torn trailing record and failing loudly on \
             corruption.")
    Term.(const run $ wal_req_arg $ expect_arg $ keep_tear_arg)

(* --- serve / client ------------------------------------------------------ *)

module Server = Wdm_server.Server
module Client = Wdm_server.Client
module Resilient = Wdm_server.Resilient

let address_conv =
  let parse s =
    let starts_with prefix =
      String.length s > String.length prefix
      && String.sub s 0 (String.length prefix) = prefix
    in
    let after prefix =
      String.sub s (String.length prefix) (String.length s - String.length prefix)
    in
    if starts_with "unix:" then Ok (Server.Unix_socket (after "unix:"))
    else
      let hostport = if starts_with "tcp:" then after "tcp:" else s in
      match String.rindex_opt hostport ':' with
      | None ->
        Error (`Msg "expected unix:PATH, tcp:HOST:PORT or HOST:PORT")
      | Some i -> (
        let host = String.sub hostport 0 i in
        let port = String.sub hostport (i + 1) (String.length hostport - i - 1) in
        match int_of_string_opt port with
        | Some p when host <> "" && p >= 0 && p <= 65535 ->
          Ok (Server.Tcp (host, p))
        | _ -> Error (`Msg ("invalid address: " ^ s)))
  in
  Arg.conv (parse, Server.pp_address)

let default_address = Server.Tcp ("127.0.0.1", 7878)

let serve_cmd =
  let n_local_arg =
    Arg.(value & opt int 4 & info [ "n-local" ] ~docv:"NL"
           ~doc:"Ports per input/output module.")
  in
  let r_arg =
    Arg.(value & opt int 4 & info [ "r" ] ~docv:"R" ~doc:"Input/output modules.")
  in
  let m_arg =
    Arg.(value & opt (some int) None & info [ "m" ] ~docv:"M"
           ~doc:"Middle modules; defaults to the theorem minimum.")
  in
  let construction_arg =
    Arg.(
      value
      & opt (enum [ ("msw-dominant", Network.Msw_dominant); ("maw-dominant", Network.Maw_dominant) ])
          Network.Msw_dominant
      & info [ "construction" ] ~docv:"C" ~doc:"msw-dominant or maw-dominant.")
  in
  let listen_arg =
    Arg.(value & opt address_conv default_address & info [ "listen" ] ~docv:"ADDR"
           ~doc:"Address to serve on: unix:PATH, tcp:HOST:PORT or HOST:PORT \
                 (port 0 binds an ephemeral port).")
  in
  let fsync_every_arg =
    Arg.(value & opt (some int) None & info [ "fsync-every" ] ~docv:"N"
           ~doc:"fsync the WAL every N records (default: flush to the OS \
                 after every record, no fsync).")
  in
  let queue_capacity_arg =
    Arg.(value & opt int 256 & info [ "queue-capacity" ] ~docv:"Q"
           ~doc:"Admission-queue bound; when full, reader threads stop \
                 pulling bytes and TCP flow control holds the clients back.")
  in
  let batch_limit_arg =
    Arg.(value & opt int 64 & info [ "batch-limit" ] ~docv:"B"
           ~doc:"Requests the admission loop takes per drain.")
  in
  let follower_arg =
    Arg.(value & opt (some address_conv) None & info [ "follower" ] ~docv:"LEADER"
           ~doc:"Run as a follower of the leader at this address: subscribe \
                 to its committed-op stream, apply it locally (journalled to \
                 $(b,--wal) when given), serve read-only requests, and \
                 refuse mutations.  SIGUSR1 or $(b,wdmnet promote) promotes \
                 this node to leader.")
  in
  let http_arg =
    Arg.(value & opt (some address_conv) None & info [ "http" ] ~docv:"ADDR"
           ~doc:"Serve the observability plane ($(b,/metrics), \
                 $(b,/healthz), $(b,/readyz), $(b,/spans)) over HTTP 1.0 \
                 at this address.")
  in
  let ready_lag_arg =
    Arg.(value & opt int 64 & info [ "ready-lag" ] ~docv:"OPS"
           ~doc:"A follower answers $(b,/readyz) with 200 only while its \
                 apply lag is within this many ops of the leader.")
  in
  let slow_ms_arg =
    Arg.(value & opt (some float) None & info [ "slow-ms" ] ~docv:"MS"
           ~doc:"Log every request whose total latency reaches MS \
                 milliseconds as one JSONL line (span id + per-stage \
                 breakdown) to $(b,--slow-log) or stderr.")
  in
  let slow_log_arg =
    Arg.(value & opt (some string) None & info [ "slow-log" ] ~docv:"FILE"
           ~doc:"Destination file for the $(b,--slow-ms) log.")
  in
  let max_conns_arg =
    Arg.(value & opt (some int) None & info [ "max-conns" ] ~docv:"N"
           ~doc:"Cap concurrently open request connections; past it, new \
                 connections are closed at accept (counted in \
                 $(b,server_accept_errors_total)).  The $(b,--http) plane \
                 is exempt so health stays scrapable at the cap.")
  in
  let mesh_arg =
    Arg.(value & opt (some string) None & info [ "mesh" ] ~docv:"TOPO"
           ~doc:"Serve a graph-based mesh RWA network over the named \
                 topology (nsf14, clara, janet, ringN, torusRxC) instead \
                 of the three-stage fabric.  $(b,--wavelengths) sets the \
                 per-fiber count; $(b,--strategy) the wavelength \
                 assignment.  The wire protocol is unchanged: endpoint \
                 ports are 1-based node ids and fault ops are refused.")
  in
  let strategy_arg =
    Arg.(value & opt (some string) None & info [ "strategy" ] ~docv:"S"
           ~doc:"Routing strategy.  For $(b,--mesh): first-fit, most-used, \
                 least-used, random, coloring (default first-fit); for the \
                 three-stage fabric: min-intersection, first-fit, \
                 exhaustive (default min-intersection).  Either engine also \
                 accepts any registered plug-in: adaptive, annealed, \
                 crosstalk[:BASE[:DB]].")
  in
  let run n r k m construction model listen wal fsync_every queue_capacity
      batch_limit follower http ready_lag slow_ms slow_log max_conns mesh
      strategy trace_file =
    (match mesh with None -> check_dims n k | Some _ -> ());
    if r < 1 then begin prerr_endline "wdmnet: R must be >= 1"; exit 2 end;
    if queue_capacity < 1 || batch_limit < 1 then begin
      prerr_endline "wdmnet: queue-capacity and batch-limit must be >= 1";
      exit 2
    end;
    (match max_conns with
    | Some mc when mc < 1 ->
      prerr_endline "wdmnet: max-conns must be >= 1";
      exit 2
    | _ -> ());
    let policy =
      match fsync_every with
      | None -> None
      | Some fe ->
        if fe < 1 then begin
          prerr_endline "wdmnet: fsync-every must be >= 1";
          exit 2
        end;
        Some (Persist.Wal.Fsync_every fe)
    in
    let trace = Option.map (fun _ -> Tel.Trace.create ()) trace_file in
    let sink = Tel.Sink.create ?trace () in
    let backend, describe =
      match mesh with
      | Some topo_name ->
        let strat =
          match
            Mesh_assign.strategy_of_string
              (Option.value ~default:"first-fit" strategy)
          with
          | Ok s -> s
          | Error e -> prerr_endline ("wdmnet: " ^ e); exit 2
        in
        let config =
          { Mesh.Config.default with Mesh.Config.k; strategy = strat }
        in
        (match Mesh.create ~telemetry:sink ~config topo_name with
        | Error e -> prerr_endline ("wdmnet: " ^ e); exit 2
        | Ok mesh ->
          let g = Mesh.graph mesh in
          ( Persist.Backend.Mesh mesh,
            fun () ->
              Format.printf
                "mesh %s: %d nodes, %d links, %d wavelengths, %s@." topo_name
                (Wdm_mesh.Graph.n g) (Wdm_mesh.Graph.m g) k
                (Mesh_assign.strategy_to_string strat) ))
      | None ->
        let eval =
          match construction with
          | Network.Msw_dominant -> Conditions.msw_dominant ~n ~r
          | Network.Maw_dominant -> Conditions.maw_dominant ~n ~r ~k
        in
        let m = Option.value ~default:eval.Conditions.m_min m in
        let topo = Topology.make_exn ~n ~m ~r ~k in
        let strat =
          match strategy with
          | None -> Network.Config.default.Network.Config.strategy
          | Some s -> (
            match Network.strategy_of_string s with
            | Ok s -> s
            | Error e -> prerr_endline ("wdmnet: " ^ e); exit 2)
        in
        let net =
          Network.create
            ~config:
              {
                Network.Config.default with
                telemetry = Some sink;
                strategy = strat;
              }
            ~construction ~output_model:model topo
        in
        ( Persist.Backend.Net net,
          fun () ->
            Format.printf "topology: %a, model %a@." Topology.pp topo Model.pp
              model )
    in
    (* A follower manages its own store (truncated on snapshot install,
       resumed from the mark on restart); only a leader takes one here. *)
    let store =
      match follower with
      | Some _ -> None
      | None ->
        Option.map
          (fun wal -> Persist.Store.start_backend ?policy ~wal backend)
          wal
    in
    let srv =
      Server.start_backend ~telemetry:sink ?store ~queue_capacity ~batch_limit
        ?follower:
          (Option.map (fun leader -> { Server.leader; wal }) follower)
        ?http ~ready_lag ?slow_ms ?slow_log ?max_conns ~backend listen
    in
    describe ();
    Format.printf "serving on %a@." Server.pp_address (Server.address srv);
    (match Server.http_address srv with
    | Some haddr -> Format.printf "observability on %a@." Server.pp_address haddr
    | None -> ());
    (match follower with
    | Some leader -> Format.printf "following %a@." Server.pp_address leader
    | None -> ());
    Format.print_flush ();
    (* Park until SIGINT/SIGTERM; the handlers only flip flags — all
       shutdown (and promotion) work happens back here, outside signal
       context. *)
    let stop_requested = ref false in
    let promote_requested = ref false in
    let request_stop _ = stop_requested := true in
    List.iter
      (fun s ->
        try Sys.set_signal s (Sys.Signal_handle request_stop)
        with Invalid_argument _ | Sys_error _ -> ())
      [ Sys.sigint; Sys.sigterm ];
    (try
       Sys.set_signal Sys.sigusr1
         (Sys.Signal_handle (fun _ -> promote_requested := true))
     with Invalid_argument _ | Sys_error _ -> ());
    while not !stop_requested do
      if !promote_requested then begin
        promote_requested := false;
        match Server.promote srv with
        | Ok seq -> Printf.printf "promoted to leader at seq %d\n%!" seq
        | Error e -> Printf.eprintf "wdmnet: promote: %s\n%!" e
      end;
      Thread.delay 0.1
    done;
    prerr_endline "wdmnet: shutting down";
    Server.stop srv;
    Printf.printf "served %d requests\n" (Server.served srv);
    dump_trace trace trace_file;
    let backend = Server.backend srv in
    match Server.current_store srv with
    | Some store -> finish_store_backend store backend
    | None ->
      Printf.printf "state digest: %d\n" (Persist.Backend.digest backend)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve a live network over a socket: requests are WAL-format \
             ops, admitted by a single writer in batches; with $(b,--wal) \
             the session crash-recovers like a recorded run.  With \
             $(b,--follower) the node replicates a leader instead (SIGUSR1 \
             promotes it).  $(b,--http) adds a live observability plane; \
             $(b,--trace) writes the request-stage spans as a Chrome trace \
             at shutdown.  SIGINT or SIGTERM shuts down gracefully and \
             prints the state digest.")
    Term.(const run $ n_local_arg $ r_arg $ k_arg $ m_arg $ construction_arg
          $ model_arg $ listen_arg $ wal_arg $ fsync_every_arg
          $ queue_capacity_arg $ batch_limit_arg $ follower_arg $ http_arg
          $ ready_lag_arg $ slow_ms_arg $ slow_log_arg $ max_conns_arg
          $ mesh_arg $ strategy_arg $ trace_arg)

let client_cmd =
  let connect_arg =
    Arg.(value & opt_all address_conv [] & info [ "connect" ] ~docv:"ADDR"
           ~doc:"Server address: unix:PATH, tcp:HOST:PORT or HOST:PORT.  \
                 Repeatable: with several addresses the client rotates \
                 through them on failure or $(i,not the leader) answers, \
                 so a workload survives a leader failover.")
  in
  let churn_flag =
    Arg.(value & flag & info [ "churn" ]
           ~doc:"Drive a seeded churn workload through the server (the \
                 loadgen twin of $(b,wdmnet simulate)); dimensions must \
                 match the served topology.")
  in
  let ops_arg =
    Arg.(value & opt int 1000 & info [ "ops" ] ~docv:"OPS"
           ~doc:"Churn events to issue with --churn.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let n_local_arg =
    Arg.(value & opt int 4 & info [ "n-local" ] ~docv:"NL"
           ~doc:"Ports per input/output module of the served topology.")
  in
  let r_arg =
    Arg.(value & opt int 4 & info [ "r" ] ~docv:"R"
           ~doc:"Input/output modules of the served topology.")
  in
  let digest_flag =
    Arg.(value & flag & info [ "digest" ]
           ~doc:"Print the server's state digest (after --churn, if both).")
  in
  let stats_flag =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Print the server's telemetry snapshot as JSON.")
  in
  let pipeline_arg =
    Arg.(value & opt int 0 & info [ "pipeline" ] ~docv:"DEPTH"
           ~doc:"Pipeline the churn workload: buffer up to DEPTH teardowns \
                 and ship them in batch frames (0 = one request per \
                 round-trip).  Op order — and therefore the digest — is \
                 identical either way.  Uses a single connection, so it \
                 combines with exactly one $(b,--connect).")
  in
  let strategy_arg =
    Arg.(value & opt (some string) None & info [ "strategy" ] ~docv:"S"
           ~doc:"Annotate the workload with the routing strategy the server \
                 was started with.  The name is validated against the \
                 strategy registries (catching typos before load is \
                 driven) and echoed in the output; routing itself is \
                 server-side.")
  in
  let run connect churn ops seed n r k model digest stats pipeline strategy =
    if not (churn || digest || stats) then begin
      prerr_endline "wdmnet: nothing to do (pass --churn, --digest or --stats)";
      exit 2
    end;
    (match strategy with
    | None -> ()
    | Some s -> (
      match (Network.strategy_of_string s, Mesh_assign.strategy_of_string s) with
      | Error _, Error e -> prerr_endline ("wdmnet: " ^ e); exit 2
      | _ -> Printf.printf "strategy under test: %s\n" s));
    let addrs = match connect with [] -> [ default_address ] | l -> l in
    let rc = Resilient.create addrs in
    Fun.protect ~finally:(fun () -> Resilient.close rc) @@ fun () ->
    let fail e =
      prerr_endline ("wdmnet: " ^ Client.error_to_string e);
      exit 1
    in
    if pipeline < 0 then begin
      prerr_endline "wdmnet: pipeline must be >= 0";
      exit 2
    end;
    if pipeline > 0 && not churn then begin
      prerr_endline "wdmnet: --pipeline needs --churn";
      exit 2
    end;
    if pipeline > 0 && List.length addrs > 1 then begin
      prerr_endline "wdmnet: --pipeline uses a single --connect address";
      exit 2
    end;
    if churn then begin
      check_dims n k;
      if r < 1 then begin prerr_endline "wdmnet: R must be >= 1"; exit 2 end;
      if ops < 0 then begin prerr_endline "wdmnet: ops must be >= 0"; exit 2 end;
      let spec = Network_spec.make_exn ~n:(n * r) ~k in
      let sum = ref 0 in
      let on_admit route = sum := Persist.Op.route_checksum !sum route in
      let sut, flush =
        if pipeline > 0 then begin
          match Client.connect (List.hd addrs) with
          | Error e -> fail e
          | Ok c ->
            at_exit (fun () -> Client.close c);
            Client.churn_sut_pipelined ~on_admit ~depth:pipeline c
        end
        else (Resilient.churn_sut ~on_admit rc, fun () -> ())
      in
      match
        let stats =
          Wdm_traffic.Churn.run
            (Random.State.make [| seed |])
            ~spec ~model
            ~fanout:(Wdm_traffic.Fanout.Zipf { max = n * r; s = 1.1 })
            ~steps:ops ~teardown_bias:0.35 sut
        in
        flush ();
        stats
      with
      | exception Failure e ->
        prerr_endline ("wdmnet: " ^ e);
        exit 1
      | stats ->
        Format.printf "%a@." Wdm_traffic.Churn.pp_stats stats;
        Printf.printf "route checksum: %d\n" !sum
    end;
    if stats then begin
      match Resilient.request rc Persist.Resp.Get_stats with
      | Ok (Persist.Resp.Stats_json js) -> print_endline js
      | Ok resp ->
        fail
          (Client.Protocol
             (Format.asprintf "unexpected response: %a" Persist.Resp.pp resp))
      | Error e -> fail e
    end;
    if digest then begin
      match Resilient.digest rc with
      | Ok d -> Printf.printf "state digest: %d\n" d
      | Error e -> fail e
    end
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Talk to a $(b,wdmnet serve) instance: drive a seeded churn \
             workload ($(b,--churn)), fetch the state digest \
             ($(b,--digest)) or the telemetry snapshot ($(b,--stats)).")
    Term.(const run $ connect_arg $ churn_flag $ ops_arg $ seed_arg
          $ n_local_arg $ r_arg $ k_arg $ model_arg $ digest_flag $ stats_flag
          $ pipeline_arg $ strategy_arg)

(* --- promote ------------------------------------------------------------ *)

let promote_cmd =
  let connect_arg =
    Arg.(value & opt address_conv default_address & info [ "connect" ] ~docv:"ADDR"
           ~doc:"Follower address: unix:PATH, tcp:HOST:PORT or HOST:PORT.")
  in
  let run connect =
    match Client.connect connect with
    | Error e ->
      prerr_endline ("wdmnet: " ^ Client.error_to_string e);
      exit 1
    | Ok c ->
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      (match Client.promote c with
      | Ok seq -> Printf.printf "promoted at seq %d\n" seq
      | Error e ->
        prerr_endline ("wdmnet: " ^ Client.error_to_string e);
        exit 1)
  in
  Cmd.v
    (Cmd.info "promote"
       ~doc:"Promote a $(b,wdmnet serve --follower) instance to leader: it \
             stops replicating, adopts a fresh epoch and starts accepting \
             mutations.  Equivalent to sending the serving process \
             $(b,SIGUSR1).")
    Term.(const run $ connect_arg)

(* --- top ---------------------------------------------------------------- *)

(* The dashboard is one Get_stats round-trip per refresh: the response
   carries role/epoch/applied/lag plus the full metrics snapshot, so
   rates come from counter deltas and stage quantiles from the shipped
   histogram buckets — no server-side aggregation beyond what /metrics
   already maintains. *)
let top_cmd =
  let connect_arg =
    Arg.(value & opt_all address_conv [] & info [ "connect" ] ~docv:"ADDR"
           ~doc:"Server address: unix:PATH, tcp:HOST:PORT or HOST:PORT.  \
                 Repeatable; rotates on failure like $(b,wdmnet client).")
  in
  let interval_arg =
    Arg.(value & opt float 1.0 & info [ "interval" ] ~docv:"SECONDS"
           ~doc:"Refresh period.")
  in
  let iterations_arg =
    Arg.(value & opt (some int) None & info [ "iterations" ] ~docv:"N"
           ~doc:"Stop after N refreshes (default: run until interrupted).")
  in
  let no_clear_flag =
    Arg.(value & flag & info [ "no-clear" ]
           ~doc:"Append refreshes instead of clearing the terminal (for \
                 piping or CI capture).")
  in
  let run connect interval iterations no_clear =
    if interval <= 0. then begin
      prerr_endline "wdmnet: interval must be > 0";
      exit 2
    end;
    let addrs = match connect with [] -> [ default_address ] | l -> l in
    (* fail fast: a dashboard poll that can't reach anyone should say
       so and retry on the next refresh, not sit in Resilient's
       default ~14s failover budget *)
    let rc =
      Resilient.create ~dial_timeout:1.0 ~deadline:2.0 ~max_attempts:3
        ~backoff:0.05 ~backoff_cap:0.25 addrs
    in
    Fun.protect ~finally:(fun () -> Resilient.close rc) @@ fun () ->
    let module J = Tel.Json in
    let fetch () =
      match Resilient.request rc Persist.Resp.Get_stats with
      | Ok (Persist.Resp.Stats_json js) -> Result.to_option (J.parse js)
      | _ -> None
    in
    let num = function
      | J.Int i -> float_of_int i
      | J.Float f -> f
      | _ -> 0.
    in
    let obj_members name j =
      match J.member name j with Some (J.Obj kvs) -> kvs | _ -> []
    in
    let counter j name =
      match List.assoc_opt name (obj_members "counters" j) with
      | Some v -> int_of_float (num v)
      | None -> 0
    in
    let gauge j name =
      Option.map num (List.assoc_opt name (obj_members "gauges" j))
    in
    let histogram j name =
      match List.assoc_opt name (obj_members "histograms" j) with
      | None -> None
      | Some h ->
        let floats field =
          match J.member field h with
          | Some (J.List l) -> Array.of_list (List.map num l)
          | _ -> [||]
        in
        let bounds = floats "bounds" in
        let cumulative = Array.map int_of_float (floats "cumulative") in
        let sum = match J.member "sum" h with Some v -> num v | None -> 0. in
        let count =
          match J.member "count" h with Some (J.Int c) -> c | _ -> 0
        in
        (* reconstruct a Histogram.snapshot so quantile estimation is
           the same code the server itself uses *)
        if Array.length cumulative = Array.length bounds + 1 then
          Some { Tel.Histogram.bounds; cumulative; sum; count }
        else None
    in
    let stop = ref false in
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true))
     with Invalid_argument _ | Sys_error _ -> ());
    let prev = ref None in
    let iter = ref 0 in
    let continue () =
      (not !stop)
      && match iterations with Some limit -> !iter < limit | None -> true
    in
    while continue () do
      incr iter;
      (match fetch () with
      | None -> print_endline "wdmnet top: server unreachable"
      | Some j ->
        let buf = Buffer.create 1024 in
        let line fmt =
          Printf.ksprintf
            (fun s ->
              Buffer.add_string buf s;
              Buffer.add_char buf '\n')
            fmt
        in
        let str name =
          match J.member name j with Some (J.String s) -> s | _ -> "?"
        in
        let top_int name =
          match J.member name j with Some (J.Int i) -> i | _ -> 0
        in
        let requests = counter j "server_requests_total" in
        let tnow = Unix.gettimeofday () in
        let rate =
          match !prev with
          | Some (r0, t0) when tnow > t0 ->
            float_of_int (requests - r0) /. (tnow -. t0)
          | _ -> 0.
        in
        prev := Some (requests, tnow);
        let g name = Option.value ~default:0. (gauge j name) in
        line "wdmnet top · role %s · epoch %d · applied %d · lag %d"
          (str "role") (top_int "epoch") (top_int "applied") (top_int "lag");
        line
          "requests %d (%.1f/s) · responses %d · clients %.0f active / %d \
           total · queue %.0f"
          requests rate
          (counter j "server_responses_total")
          (g "server_clients_active")
          (counter j "server_clients_total")
          (g "server_queue_depth");
        line
          "replication: followers %.0f · outbox lag %.0f ops %.0f B · apply \
           lag %.0f · evictions %d · slow %d"
          (g "repl_followers") (g "repl_lag_ops") (g "repl_lag_bytes")
          (g "repl_follower_lag_ops")
          (counter j "repl_evictions_total")
          (counter j "server_slow_requests_total");
        line "%-10s %12s %12s %12s %12s" "stage" "count" "p50" "p95" "p99";
        let stage_row label name =
          match histogram j name with
          | None -> ()
          | Some s ->
            let q p =
              match Tel.Histogram.quantile s p with
              | Some v -> Printf.sprintf "<=%.3gms" (v *. 1000.)
              | None -> "-"
            in
            line "%-10s %12d %12s %12s %12s" label s.Tel.Histogram.count
              (q 0.5) (q 0.95) (q 0.99)
        in
        List.iter
          (fun stage ->
            stage_row stage (Printf.sprintf "server_stage_%s_seconds" stage))
          [ "decode"; "queue"; "execute"; "wal"; "replicate"; "respond" ];
        stage_row "total" "server_request_latency_seconds";
        (* per-middle first-stage occupancy, in middle order *)
        let prefix = "wdmnet_stage1_occupancy{middle=\"" in
        let middles =
          List.filter_map
            (fun (name, v) ->
              if
                String.length name > String.length prefix
                && String.sub name 0 (String.length prefix) = prefix
              then
                let rest =
                  String.sub name (String.length prefix)
                    (String.length name - String.length prefix)
                in
                match String.index_opt rest '"' with
                | Some q -> (
                  match int_of_string_opt (String.sub rest 0 q) with
                  | Some m -> Some (m, num v)
                  | None -> None)
                | None -> None
              else None)
            (obj_members "gauges" j)
        in
        (match List.sort compare middles with
        | [] -> ()
        | ms ->
          line "middle occupancy: %s"
            (String.concat " "
               (List.map (fun (m, v) -> Printf.sprintf "%d:%.2f" m v) ms)));
        if not no_clear then print_string "\027[2J\027[H";
        print_string (Buffer.contents buf);
        flush stdout);
      if continue () then begin
        (* sleep in slices so Ctrl-C lands promptly *)
        let left = ref interval in
        while !left > 0. && not !stop do
          Thread.delay (min 0.1 !left);
          left := !left -. 0.1
        done
      end
    done
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live dashboard for a $(b,wdmnet serve) instance: polls \
             $(b,Get_stats) and renders role, req/s, per-stage \
             p50/p95/p99, queue depth, per-middle occupancy and \
             replication lag, refreshing every $(b,--interval) seconds.")
    Term.(const run $ connect_arg $ interval_arg $ iterations_arg
          $ no_clear_flag)

(* --- adversary ----------------------------------------------------------- *)

let adversary_cmd =
  let max_states_arg =
    Arg.(value & opt int 100_000 & info [ "max-states" ] ~docv:"S"
           ~doc:"State budget for the exhaustive search.")
  in
  let run n r k max_states =
    check_dims n k;
    Format.printf
      "Exhaustive blocking-frontier search (MSW-dominant/MSW, n=%d r=%d k=%d)\n"
      n r k;
    Format.printf "Theorem 1 m_min = %d\n\n"
      (Conditions.msw_dominant ~n ~r).Conditions.m_min;
    List.iter
      (fun (m, v) -> Format.printf "m=%d: %a\n" m An.Adversary.pp_verdict v)
      (An.Adversary.frontier_exact ~max_states
         ~construction:Network.Msw_dominant ~output_model:Model.MSW ~n ~r ~k ())
  in
  let n_local =
    Arg.(value & opt int 2 & info [ "n-local" ] ~docv:"NL" ~doc:"Ports per module.")
  in
  let r_arg = Arg.(value & opt int 2 & info [ "r" ] ~docv:"R" ~doc:"Modules per side.") in
  Cmd.v
    (Cmd.info "adversary"
       ~doc:"Exhaustive search for blocking witnesses (small instances).")
    Term.(const run $ n_local $ r_arg $ k_arg $ max_states_arg)

(* --- figures --------------------------------------------------------------- *)

let figures_cmd =
  let run n k =
    check_dims n k;
    print_endline (An.Diagram.fig1_network (Network_spec.make_exn ~n ~k));
    print_endline (An.Diagram.fig2_models ());
    print_endline (An.Diagram.fig5_space_crossbar ~n:(min n 6));
    match Conditions.msw_dominant ~n:2 ~r:2 with
    | eval ->
      let topo = Topology.make_exn ~n:2 ~m:eval.Conditions.m_min ~r:2 ~k in
      print_endline (An.Diagram.fig8_three_stage topo);
      print_endline
        (An.Diagram.fig9_construction ~construction:Network.Msw_dominant
           ~output_model:Model.MAW topo)
  in
  Cmd.v (Cmd.info "figures" ~doc:"Render the construction figures as text.")
    Term.(const run $ n_arg $ k_arg)

(* --- mesh (graph-based RWA blocking campaigns) ----------------------------- *)

let mesh_cmd =
  let topos_arg =
    Arg.(value & opt (list string) [ "nsf14"; "janet" ] & info [ "topos" ]
           ~docv:"T,.." ~doc:"Topologies to sweep: nsf14, clara, janet, \
                              ringN, torusRxC.")
  in
  let strategies_arg =
    Arg.(value & opt (list string) [ "first-fit"; "coloring" ]
         & info [ "strategies" ] ~docv:"S,.."
             ~doc:"Wavelength assignment strategies: first-fit, most-used, \
                   least-used, random, coloring, or any registered plug-in \
                   (adaptive, annealed, crosstalk[:BASE[:DB]]).")
  in
  let strategy_arg =
    Arg.(value & opt (some string) None & info [ "strategy" ] ~docv:"S"
           ~doc:"Shorthand for $(b,--strategies) with a single entry.")
  in
  let probe_arg =
    Arg.(value & opt (some string) None & info [ "probe" ] ~docv:"SRC:D,..."
           ~doc:"Instead of a campaign, build one network on the first \
                 topology and issue a single connect from node SRC to the \
                 listed destination nodes, printing the route or the typed \
                 refusal.")
  in
  let loads_arg =
    Arg.(value & opt (list float) [ 4.; 8.; 12.; 16.; 20.; 24. ]
         & info [ "loads" ] ~docv:"E,.." ~doc:"Offered loads in Erlangs.")
  in
  let arrivals_arg =
    Arg.(value & opt int 4000 & info [ "arrivals" ] ~docv:"N"
           ~doc:"Arrivals per campaign cell.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Campaign seed; per-cell RNGs derive from it and the \
                 cell's coordinates, so tables are reproducible.")
  in
  let mesh_k_arg =
    Arg.(value & opt int 8 & info [ "k"; "wavelengths" ] ~docv:"K"
           ~doc:"Wavelengths per fiber (1..62).")
  in
  let k_paths_arg =
    Arg.(value & opt int 3 & info [ "k-paths" ] ~docv:"P"
           ~doc:"Yen candidate paths per unicast request.")
  in
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("tree", Wdm_mesh.Light_tree.Tree);
                    ("hierarchy", Wdm_mesh.Light_tree.Hierarchy) ])
          Wdm_mesh.Light_tree.Hierarchy
      & info [ "mode" ] ~docv:"M"
          ~doc:"Multicast structure: tree (no node revisits) or hierarchy \
                (revisits through distinct edge pairs, after \
                Zhou-Molnár-Cousin).")
  in
  let splitters_arg =
    Arg.(value & opt string "all" & info [ "splitters" ] ~docv:"SPL"
           ~doc:"Which nodes can split light: $(b,all), $(b,none), \
                 $(b,degree:D) (nodes of degree >= D), or a comma list \
                 of node ids.")
  in
  let fanout_arg =
    Arg.(value & opt int 4 & info [ "max-fanout" ] ~docv:"F"
           ~doc:"Zipf fanout ceiling for multicast requests.")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ]
           ~doc:"CI smoke profile: 400 arrivals over loads 4, 12 and 24 \
                 (overrides $(b,--arrivals) and $(b,--loads)).")
  in
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Also write the table as a JSON object in the \
                 $(b,mesh_blocking) schema (EXPERIMENTS.md).")
  in
  let parse_splitters s =
    match s with
    | "all" -> Ok Mesh.Split_all
    | "none" -> Ok Mesh.Split_none
    | s when String.length s > 7 && String.sub s 0 7 = "degree:" -> (
      match int_of_string_opt (String.sub s 7 (String.length s - 7)) with
      | Some d -> Ok (Mesh.Split_degree_ge d)
      | None -> Error ("bad degree bound: " ^ s))
    | s -> (
      let ids = String.split_on_char ',' s in
      match
        List.map
          (fun id ->
            match int_of_string_opt (String.trim id) with
            | Some v -> v
            | None -> raise Exit)
          ids
      with
      | ids -> Ok (Mesh.Split_nodes ids)
      | exception Exit ->
        Error ("bad --splitters (want all, none, degree:D or ids): " ^ s))
  in
  let run topos strategies strategy probe loads arrivals seed k k_paths mode
      splitters fanout quick json =
    let strategies =
      match strategy with Some s -> [ s ] | None -> strategies
    in
    let strategies =
      List.map
        (fun s ->
          match Mesh_assign.strategy_of_string s with
          | Ok s -> s
          | Error e -> prerr_endline ("wdmnet: " ^ e); exit 2)
        strategies
    in
    let splitters =
      match parse_splitters splitters with
      | Ok s -> s
      | Error e -> prerr_endline ("wdmnet: " ^ e); exit 2
    in
    match probe with
    | Some spec_str -> (
      let parse_probe s =
        match String.split_on_char ':' s with
        | [ src; dests ] -> (
          match
            ( int_of_string_opt (String.trim src),
              List.map
                (fun d -> int_of_string_opt (String.trim d))
                (String.split_on_char ',' dests) )
          with
          | Some src, dests when List.for_all Option.is_some dests ->
            Some (src, List.map Option.get dests)
          | _ -> None)
        | _ -> None
      in
      match (parse_probe spec_str, topos, strategies) with
      | None, _, _ ->
        prerr_endline "wdmnet: bad --probe (want SRC:D1,D2,...)";
        exit 2
      | _, [], _ | _, _, [] ->
        prerr_endline "wdmnet: --probe needs a topology and a strategy";
        exit 2
      | Some (src, dests), topo :: _, strategy :: _ ->
        let config = { Mesh.Config.k; strategy; mode; splitters; k_paths } in
        (match Mesh.create ~config topo with
        | Error e -> prerr_endline ("wdmnet: " ^ e); exit 2
        | Ok net ->
          let ep p = Endpoint.make ~port:p ~wl:1 in
          let conn =
            Connection.make_exn ~source:(ep src)
              ~destinations:(List.map ep dests)
          in
          (* the same refusal path fig10 prints multistage blocks
             through — satellite: one rendering path for both engines *)
          (match Mesh.connect net conn with
          | Ok r -> Format.printf "ROUTED (%a)@." Mesh.pp_route r
          | Error e ->
            Format.printf "BLOCKED (%s)@." (refusal_to_string (`Mesh e)))))
    | None ->
    let arrivals = if quick then Campaign.quick.Campaign.arrivals else arrivals in
    let loads = if quick then Campaign.quick.Campaign.loads else loads in
    let spec =
      {
        Campaign.seed; k; mode; splitters; k_paths; topos; strategies; loads;
        arrivals;
        fanout = Wdm_traffic.Fanout.Zipf { max = fanout; s = 1.3 };
      }
    in
    match Campaign.run spec with
    | Error e -> prerr_endline ("wdmnet: " ^ e); exit 2
    | Ok cells ->
      Format.printf "%a@." Campaign.pp_table cells;
      (match json with
      | None -> ()
      | Some file ->
        let module J = Tel.Json in
        let doc =
          J.Obj
            [
              ("seed", J.Int spec.Campaign.seed);
              ("wavelengths", J.Int spec.Campaign.k);
              ("arrivals_per_cell", J.Int spec.Campaign.arrivals);
              ( "cells",
                J.List
                  (List.map
                     (fun (c : Campaign.cell) ->
                       let p = c.Campaign.point in
                       J.Obj
                         [
                           ("topo", J.String c.Campaign.topo);
                           ( "strategy",
                             J.String
                               (Mesh_assign.strategy_to_string
                                  c.Campaign.strategy) );
                           ( "erlangs",
                             J.Float p.Wdm_traffic.Erlang.offered_erlangs );
                           ("arrivals", J.Int p.Wdm_traffic.Erlang.arrivals);
                           ("accepted", J.Int p.Wdm_traffic.Erlang.accepted);
                           ("blocked", J.Int p.Wdm_traffic.Erlang.blocked);
                           ("blocking", J.Float p.Wdm_traffic.Erlang.blocking);
                           ( "mean_active",
                             J.Float p.Wdm_traffic.Erlang.mean_active );
                         ])
                     cells) );
            ]
        in
        write_file file (J.to_string doc ^ "\n");
        Printf.printf "wrote %s (%d cells)\n" file (List.length cells))
  in
  Cmd.v
    (Cmd.info "mesh"
       ~doc:"Run Erlang-load blocking-probability campaigns on graph-based \
             mesh RWA networks: topologies x assignment strategies x \
             offered loads, with sparse-splitting multicast \
             (light-trees or light-hierarchies).  Deterministic per-cell \
             seeds make every table reproducible.")
    Term.(const run $ topos_arg $ strategies_arg $ strategy_arg $ probe_arg
          $ loads_arg $ arrivals_arg $ seed_arg $ mesh_k_arg $ k_paths_arg
          $ mode_arg $ splitters_arg $ fanout_arg $ quick_arg $ json_arg)

(* --- compare (strategy racing) ------------------------------------------- *)

let compare_cmd =
  let module Compare = Wdm_lab.Compare in
  let strategies_arg =
    Arg.(value & opt (some (list string)) None & info [ "strategies" ]
           ~docv:"S,.."
           ~doc:"Strategies to race (default: first-fit, adaptive, \
                 annealed, crosstalk).  Every name must resolve on both \
                 engines.")
  in
  let seed_arg =
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED"
           ~doc:"Campaign seed; per-cell RNGs derive from it and the \
                 workload index only, so every strategy races the same \
                 traffic and any cell is reproducible on its own.")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ]
           ~doc:"CI smoke profile: the same workload grid at reduced \
                 steps/arrivals.")
  in
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Also write the table as a JSON object in the \
                 $(b,strategy_compare) schema (EXPERIMENTS.md).")
  in
  let run strategies seed quick json =
    let spec = if quick then Compare.quick else Compare.default in
    let spec =
      {
        spec with
        Compare.strategies =
          Option.value ~default:spec.Compare.strategies strategies;
        seed = Option.value ~default:spec.Compare.seed seed;
      }
    in
    match Compare.run spec with
    | Error e -> prerr_endline ("wdmnet: " ^ e); exit 2
    | Ok cells ->
      Format.printf "%a@." Compare.pp_table cells;
      (match json with
      | None -> ()
      | Some file ->
        let module J = Tel.Json in
        let doc =
          J.Obj
            [
              ("seed", J.Int spec.Compare.seed);
              ( "strategies",
                J.List
                  (List.map (fun s -> J.String s) spec.Compare.strategies) );
              ( "cells",
                J.List
                  (List.map
                     (fun (c : Compare.cell) ->
                       J.Obj
                         [
                           ("engine", J.String c.Compare.engine);
                           ("workload", J.String c.Compare.workload);
                           ("strategy", J.String c.Compare.strategy);
                           ("attempts", J.Int c.Compare.attempts);
                           ("accepted", J.Int c.Compare.accepted);
                           ("blocked", J.Int c.Compare.blocked);
                           ("blocking", J.Float c.Compare.blocking);
                           ( "mean_connect_us",
                             J.Float c.Compare.mean_connect_us );
                         ])
                     cells) );
            ]
        in
        write_file file (J.to_string doc ^ "\n");
        Printf.printf "wrote %s (%d cells)\n" file (List.length cells))
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Race routing strategies over identical seeded traffic on both \
             engines: multistage churn workloads and mesh Erlang workloads, \
             one blocking/latency row per (workload, strategy) cell.  The \
             per-cell RNG never sees the strategy, so cells in a row \
             differ only by the routing decisions under test.")
    Term.(const run $ strategies_arg $ seed_arg $ quick_arg $ json_arg)

(* --- deep (recursive designs) ---------------------------------------------- *)

let deep_cmd =
  let stages_arg =
    Arg.(value & opt int 5 & info [ "stages" ] ~docv:"S" ~doc:"Odd stage count.")
  in
  let steps_arg =
    Arg.(value & opt int 2000 & info [ "steps" ] ~docv:"STEPS" ~doc:"Churn events (0: design only).")
  in
  let run stages n k steps =
    check_dims n k;
    match Recursive.design ~stages ~big_n:n ~k ~output_model:Model.MSW with
    | Error e ->
      prerr_endline e;
      exit 2
    | Ok d ->
      Format.printf "%a\n" Recursive.pp d;
      Format.printf "crosspoints: %d, converters: %d, m per level: %s\n"
        (Recursive.crosspoints d) (Recursive.converters d)
        (String.concat ","
           (List.map string_of_int (Recursive.middle_modules_per_level d)));
      if steps > 0 then begin
        let t = Rnetwork.create ~construction:Network.Msw_dominant d in
        let sut =
          {
            Wdm_traffic.Churn.connect =
              (fun c ->
                match Rnetwork.connect t c with
                | Ok route -> Ok route.Rnetwork.base.Network.id
                | Error e -> Error e);
            disconnect = (fun id -> ignore (Rnetwork.disconnect t id));
          }
        in
        let stats =
          Wdm_traffic.Churn.run (Random.State.make [| 1 |])
            ~spec:(Topology.spec (Rnetwork.topology t))
            ~model:Model.MSW
            ~fanout:(Wdm_traffic.Fanout.Zipf { max = n; s = 1.1 })
            ~steps ~teardown_bias:0.35 sut
        in
        Format.printf "churn: %a\n" Wdm_traffic.Churn.pp_stats stats
      end
  in
  Cmd.v
    (Cmd.info "deep" ~doc:"Design and churn a recursive (5/7-stage) network.")
    Term.(const run $ stages_arg $ n_arg $ k_arg $ steps_arg)

let () =
  (* every subcommand that touches a socket must see EPIPE, not die *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let doc = "nonblocking WDM multicast switching networks (Yang-Wang-Qiao reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "wdmnet" ~version:"1.0.0" ~doc)
          [
            capacity_cmd; cost_cmd; design_cmd; tables_cmd; sweep_cmd;
            fig10_cmd; simulate_cmd; faults_cmd; stats_cmd; record_cmd;
            recover_cmd; serve_cmd; client_cmd; promote_cmd; top_cmd;
            adversary_cmd;
            figures_cmd;
            deep_cmd;
            mesh_cmd;
            compare_cmd;
          ]))
