(* Tests for the persistence layer: the wire primitives and CRC
   framing, the op and snapshot codecs (round-trips, rejection of
   malformed input), WAL write/read/tear/corruption classification, and
   the snapshot/restore contract on the network itself. *)

open Wdm_core
open Wdm_multistage
module P = Wdm_persist
module Fault = Wdm_faults.Fault

let ep port wl = Endpoint.make ~port ~wl
let conn src dests = Connection.make_exn ~source:src ~destinations:dests

(* --- crc32 --------------------------------------------------------------- *)

let test_crc32_known () =
  (* the classic check value for CRC-32/ISO-HDLC *)
  Alcotest.(check int) "check string" 0xcbf43926 (P.Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (P.Crc32.string "")

let test_crc32_compose () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let whole = P.Crc32.string s in
  let split =
    P.Crc32.update (P.Crc32.update 0 s ~pos:0 ~len:20) s ~pos:20
      ~len:(String.length s - 20)
  in
  Alcotest.(check int) "incremental = one-shot" whole split

(* --- wire ---------------------------------------------------------------- *)

let test_wire_ints () =
  let roundtrip put get v =
    let b = Buffer.create 16 in
    put b v;
    let r = P.Wire.reader (Buffer.contents b) in
    let v' = get r in
    P.Wire.expect_end r;
    Alcotest.(check int) (Printf.sprintf "roundtrip %d" v) v v'
  in
  List.iter (roundtrip P.Wire.put_u8 P.Wire.get_u8) [ 0; 1; 127; 255 ];
  List.iter (roundtrip P.Wire.put_u32 P.Wire.get_u32) [ 0; 1; 0xffff; 0xffffffff ];
  List.iter
    (roundtrip P.Wire.put_int P.Wire.get_int)
    [ 0; 1; -1; 42; -42; (1 lsl 55) - 1; -(1 lsl 55) + 1 ];
  let rejects put v =
    Alcotest.check_raises
      (Printf.sprintf "rejects %d" v)
      (Invalid_argument "Wire.put_u32: out of range")
      (fun () -> put (Buffer.create 4) v)
  in
  rejects P.Wire.put_u32 (-1);
  rejects P.Wire.put_u32 0x100000000;
  Alcotest.(check bool) "put_int rejects 2^55" true
    (try
       P.Wire.put_int (Buffer.create 8) (1 lsl 55);
       false
     with Invalid_argument _ -> true)

let test_wire_int_rejects_corrupt_top_byte () =
  (* a top byte that is not pure sign extension cannot come from
     put_int: the decoder must flag it, not silently wrap *)
  let bogus = "\x00\x00\x00\x00\x00\x00\x00\x40" in
  Alcotest.(check bool) "flagged" true
    (try
       ignore (P.Wire.get_int (P.Wire.reader bogus));
       false
     with P.Wire.Decode_error _ -> true)

let test_wire_header () =
  let h = P.Wire.header ~kind:'W' in
  Alcotest.(check int) "length" P.Wire.header_len (String.length h);
  Alcotest.(check bool) "accepts own kind" true
    (Result.is_ok (P.Wire.check_header ~kind:'W' h));
  Alcotest.(check bool) "rejects other kind" true
    (Result.is_error (P.Wire.check_header ~kind:'S' h));
  Alcotest.(check bool) "rejects short" true
    (Result.is_error (P.Wire.check_header ~kind:'W' "WD"));
  let wrong_version = "WDMPW\x02\x00\x00" in
  Alcotest.(check bool) "rejects future version" true
    (Result.is_error (P.Wire.check_header ~kind:'W' wrong_version))

let test_frame_classification () =
  let payload = "hello, frame" in
  let f = P.Wire.frame payload in
  (match P.Wire.read_frame f ~pos:0 with
  | P.Wire.Frame { payload = p; next } ->
    Alcotest.(check string) "payload" payload p;
    Alcotest.(check int) "next" (String.length f) next
  | _ -> Alcotest.fail "expected Frame");
  (match P.Wire.read_frame f ~pos:(String.length f) with
  | P.Wire.End -> ()
  | _ -> Alcotest.fail "expected End");
  (* incomplete header and incomplete payload are torn, not corrupt *)
  (match P.Wire.read_frame (String.sub f 0 5) ~pos:0 with
  | P.Wire.Torn 0 -> ()
  | _ -> Alcotest.fail "short header should be Torn");
  (match P.Wire.read_frame (String.sub f 0 (String.length f - 3)) ~pos:0 with
  | P.Wire.Torn 0 -> ()
  | _ -> Alcotest.fail "short payload should be Torn");
  (* flipped payload byte: complete frame, wrong CRC *)
  let flipped = Bytes.of_string f in
  Bytes.set flipped 9 (Char.chr (Char.code (Bytes.get flipped 9) lxor 0x40));
  (match P.Wire.read_frame (Bytes.to_string flipped) ~pos:0 with
  | P.Wire.Corrupt { offset = 0; reason } ->
    Alcotest.(check string) "reason" "CRC mismatch" reason
  | _ -> Alcotest.fail "flipped byte should be Corrupt");
  (* an implausible length field is corruption, not a torn write *)
  let b = Buffer.create 16 in
  P.Wire.put_u32 b (P.Wire.max_payload + 1);
  P.Wire.put_u32 b 0;
  Buffer.add_string b "xxxx";
  match P.Wire.read_frame (Buffer.contents b) ~pos:0 with
  | P.Wire.Corrupt { offset = 0; _ } -> ()
  | _ -> Alcotest.fail "implausible length should be Corrupt"

(* --- op codec ------------------------------------------------------------ *)

let sample_ops =
  [
    P.Op.Connect (conn (ep 1 1) [ ep 1 1; ep 5 1 ]);
    P.Op.Connect (conn (ep 7 2) [ ep 3 2 ]);
    P.Op.Disconnect 0;
    P.Op.Disconnect 123456789;
    P.Op.Inject_fault (Fault.Middle 3);
    P.Op.Inject_fault (Fault.Input_module 2);
    P.Op.Inject_fault (Fault.Output_module 1);
    P.Op.Inject_fault (Fault.Stage1_laser { input = 1; middle = 2; wl = 1 });
    P.Op.Inject_fault (Fault.Stage2_laser { middle = 2; output = 3; wl = 2 });
    P.Op.Inject_fault (Fault.Converter { middle = 1; output = 4 });
    P.Op.Clear_fault (Fault.Middle 3);
    P.Op.Repair { connection = conn (ep 2 1) [ ep 6 1 ]; rehomed = true };
    P.Op.Repair { connection = conn (ep 4 2) [ ep 8 2; ep 2 2 ]; rehomed = false };
  ]

let encode_op op =
  let b = Buffer.create 64 in
  P.Op.encode b op;
  Buffer.contents b

let test_op_roundtrip () =
  List.iter
    (fun op ->
      match P.Op.decode_string (encode_op op) with
      | Ok op' ->
        Alcotest.(check bool)
          (Format.asprintf "roundtrip %a" P.Op.pp op)
          true (P.Op.equal op op')
      | Error e -> Alcotest.fail e)
    sample_ops

let test_op_rejects_malformed () =
  let bad what s =
    Alcotest.(check bool) what true (Result.is_error (P.Op.decode_string s))
  in
  bad "empty" "";
  bad "unknown tag" "\x09";
  bad "truncated connect" "\x01\x01\x00\x00\x00";
  bad "trailing bytes" (encode_op (P.Op.Disconnect 1) ^ "\x00");
  (* destination count of zero is structurally impossible *)
  let b = Buffer.create 16 in
  P.Wire.put_u8 b 1;
  P.Wire.put_u32 b 1;
  P.Wire.put_u32 b 1;
  P.Wire.put_u32 b 0;
  bad "zero destinations" (Buffer.contents b)

let prop_op_roundtrip =
  let gen =
    QCheck.Gen.(
      let endpoint = map2 (fun p w -> ep (p + 1) (w + 1)) (int_bound 200) (int_bound 30) in
      let connection =
        map2
          (fun src dests ->
            (* distinct destination ports, as Connection.make requires *)
            let seen = Hashtbl.create 8 in
            let dests =
              List.filter
                (fun (e : Endpoint.t) ->
                  if Hashtbl.mem seen e.Endpoint.port then false
                  else begin
                    Hashtbl.add seen e.Endpoint.port ();
                    true
                  end)
                dests
            in
            conn src dests)
          endpoint
          (list_size (int_range 1 6) endpoint)
      in
      let fault =
        oneof
          [
            map (fun i -> Fault.Middle (i + 1)) (int_bound 50);
            map (fun i -> Fault.Input_module (i + 1)) (int_bound 50);
            map (fun i -> Fault.Output_module (i + 1)) (int_bound 50);
            map3
              (fun a b c ->
                Fault.Stage1_laser { input = a + 1; middle = b + 1; wl = c + 1 })
              (int_bound 50) (int_bound 50) (int_bound 30);
            map3
              (fun a b c ->
                Fault.Stage2_laser { middle = a + 1; output = b + 1; wl = c + 1 })
              (int_bound 50) (int_bound 50) (int_bound 30);
            map2
              (fun a b -> Fault.Converter { middle = a + 1; output = b + 1 })
              (int_bound 50) (int_bound 50);
          ]
      in
      oneof
        [
          map (fun c -> P.Op.Connect c) connection;
          map (fun id -> P.Op.Disconnect id) (int_bound ((1 lsl 50) - 1));
          map (fun f -> P.Op.Inject_fault f) fault;
          map (fun f -> P.Op.Clear_fault f) fault;
          map2
            (fun c rehomed -> P.Op.Repair { connection = c; rehomed })
            connection bool;
        ])
  in
  QCheck.Test.make ~name:"op codec roundtrip" ~count:500
    (QCheck.make ~print:(Format.asprintf "%a" P.Op.pp) gen)
    (fun op ->
      match P.Op.decode_string (encode_op op) with
      | Ok op' -> P.Op.equal op op'
      | Error _ -> false)

(* --- network snapshot / restore ------------------------------------------ *)

let make_net ?telemetry ~impl () =
  let topo = Topology.make_exn ~n:3 ~m:8 ~r:3 ~k:2 in
  Network.create
    ~config:{ Network.Config.default with telemetry; link_impl = Some impl }
    ~construction:Network.Msw_dominant ~output_model:Model.MSW topo

let populate net =
  let admitted = ref [] in
  List.iter
    (fun c ->
      match Network.connect net c with
      | Ok route -> admitted := route :: !admitted
      | Error _ -> ())
    [
      conn (ep 1 1) [ ep 1 1; ep 4 1; ep 7 1 ];
      conn (ep 2 2) [ ep 5 2 ];
      conn (ep 4 1) [ ep 2 1; ep 8 1 ];
      conn (ep 9 2) [ ep 9 2 ];
    ];
  (* one teardown and one fault, so the snapshot is not just connects *)
  (match !admitted with
  | r :: _ -> ignore (Network.disconnect net r.Network.id)
  | [] -> ());
  ignore (Network.inject_fault net (Fault.Middle 2))

let test_snapshot_restore impl () =
  let net = make_net ~impl () in
  populate net;
  let restored = Network.restore (Network.snapshot net) in
  Alcotest.(check int)
    "digest equal" (P.Store.digest net) (P.Store.digest restored);
  (* behavioral indistinguishability: the same fresh request must get
     the same answer, route id and hops on both *)
  let probe = conn (ep 3 1) [ ep 6 1 ] in
  let on_net = Network.connect net probe in
  let on_restored = Network.connect restored probe in
  match (on_net, on_restored) with
  | Ok a, Ok b ->
    Alcotest.(check int) "same id" a.Network.id b.Network.id;
    Alcotest.(check int) "same hops"
      (P.Op.route_checksum 0 a)
      (P.Op.route_checksum 0 b)
  | Error _, Error _ -> ()
  | _ -> Alcotest.fail "restored network answered differently"

let test_restore_rejects_inconsistent () =
  let net = make_net ~impl:Network.Bitset () in
  populate net;
  let snap = Network.snapshot net in
  let bad = { snap with Network.s_next_id = 0 } in
  Alcotest.(check bool) "route id >= next_id rejected" true
    (try
       ignore (Network.restore bad);
       false
     with Invalid_argument _ -> true);
  let bad = { snap with Network.s_faults = [ Fault.Middle 99 ] } in
  Alcotest.(check bool) "fault outside topology rejected" true
    (try
       ignore (Network.restore bad);
       false
     with Invalid_argument _ -> true)

let test_state_codec_roundtrip () =
  let net = make_net ~impl:Network.Reference () in
  populate net;
  let snap = Network.snapshot net in
  let bytes = P.Store.encode_state snap in
  match P.Store.decode_state bytes with
  | Error e -> Alcotest.fail e
  | Ok snap' ->
    Alcotest.(check string) "re-encodes identically" bytes
      (P.Store.encode_state snap');
    Alcotest.(check int) "routes survive"
      (List.length snap.Network.s_routes)
      (List.length snap'.Network.s_routes)

(* --- wal ----------------------------------------------------------------- *)

let test_wal_write_read () =
  let path = "test_wal_rw.wal" in
  let w = P.Wal.create path in
  List.iter (P.Wal.append w) sample_ops;
  Alcotest.(check int) "records" (List.length sample_ops) (P.Wal.records w);
  let end_off = P.Wal.tell w in
  P.Wal.close w;
  (match P.Wal.read path with
  | Error e -> Alcotest.fail e
  | Ok { ops; tear } ->
    Alcotest.(check bool) "no tear" true (tear = None);
    Alcotest.(check int) "count" (List.length sample_ops) (List.length ops);
    List.iter2
      (fun expected (_, got) ->
        Alcotest.(check bool)
          (Format.asprintf "op %a" P.Op.pp expected)
          true (P.Op.equal expected got))
      sample_ops ops);
  (* cut mid-record: the tail is reported torn at the record start *)
  let contents =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let last_start =
    match P.Wal.read path with
    | Ok { ops; _ } -> fst (List.nth ops (List.length ops - 1))
    | Error e -> Alcotest.fail e
  in
  let oc = open_out_bin path in
  output_string oc (String.sub contents 0 (last_start + 3));
  close_out oc;
  (match P.Wal.read path with
  | Error e -> Alcotest.fail e
  | Ok { ops; tear } ->
    Alcotest.(check int) "one fewer op" (List.length sample_ops - 1)
      (List.length ops);
    Alcotest.(check (option int)) "tear offset" (Some last_start) tear);
  P.Wal.truncate_at path last_start;
  (match P.Wal.read path with
  | Ok { tear = None; ops } ->
    Alcotest.(check int) "clean after truncate" (List.length sample_ops - 1)
      (List.length ops)
  | Ok _ -> Alcotest.fail "still torn after truncate_at"
  | Error e -> Alcotest.fail e);
  ignore end_off;
  Sys.remove path

let test_wal_detects_corruption () =
  let path = "test_wal_corrupt.wal" in
  let w = P.Wal.create path in
  List.iter (P.Wal.append w) sample_ops;
  P.Wal.close w;
  let contents =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let flipped = Bytes.of_string contents in
  let mid = String.length contents / 2 in
  Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 0x01));
  let oc = open_out_bin path in
  output_bytes oc flipped;
  close_out oc;
  (match P.Wal.read path with
  | Error e ->
    let contains_sub s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "error names an offset: %s" e)
      true (contains_sub e "at byte")
  | Ok _ -> Alcotest.fail "flipped byte went undetected");
  Sys.remove path

let test_wal_policy_validation () =
  Alcotest.(check bool) "Flush_every 0 rejected" true
    (try
       ignore (P.Wal.create ~policy:(P.Wal.Flush_every 0) "never_created.wal");
       false
     with Invalid_argument _ -> true)

(* --- store --------------------------------------------------------------- *)

let test_store_session_and_recover () =
  let wal = "test_store_session.wal" in
  let net = make_net ~impl:Network.Bitset () in
  let store = P.Store.start ~wal net in
  let log_and_apply op =
    P.Store.log store op;
    match P.Op.apply net op with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  in
  log_and_apply (P.Op.Connect (conn (ep 1 1) [ ep 1 1; ep 4 1 ]));
  log_and_apply (P.Op.Connect (conn (ep 2 2) [ ep 5 2 ]));
  P.Store.checkpoint store net;
  log_and_apply (P.Op.Inject_fault (Fault.Middle 1));
  log_and_apply (P.Op.Connect (conn (ep 5 1) [ ep 8 1 ]));
  let digest = P.Store.digest net in
  P.Store.close store;
  (match P.Store.recover ~wal () with
  | Error e -> Alcotest.fail (Format.asprintf "%a" P.Store.pp_recovery_error e)
  | Ok r ->
    Alcotest.(check int) "digest" digest (P.Store.digest r.P.Store.network);
    Alcotest.(check int) "replayed past checkpoint" 2 r.P.Store.replayed;
    Alcotest.(check bool) "no tear" true (r.P.Store.tear = None));
  (* with every snapshot gone there is nothing to seed recovery from *)
  List.iter
    (fun seq ->
      let p = P.Store.snapshot_path ~wal ~seq in
      if Sys.file_exists p then Sys.remove p)
    [ 0; 1; 2; 3 ];
  (match P.Store.recover ~wal () with
  | Error (P.Store.No_snapshot _) -> ()
  | Error e ->
    Alcotest.fail (Format.asprintf "wrong error: %a" P.Store.pp_recovery_error e)
  | Ok _ -> Alcotest.fail "recovered with no snapshot");
  Sys.remove wal

let test_store_falls_back_to_older_snapshot () =
  let wal = "test_store_fallback.wal" in
  let net = make_net ~impl:Network.Reference () in
  let store = P.Store.start ~wal net in
  let log_and_apply op =
    P.Store.log store op;
    ignore (P.Op.apply net op)
  in
  log_and_apply (P.Op.Connect (conn (ep 1 1) [ ep 4 1 ]));
  P.Store.checkpoint store net;
  log_and_apply (P.Op.Connect (conn (ep 2 1) [ ep 5 1 ]));
  P.Store.checkpoint store net;
  let digest = P.Store.digest net in
  P.Store.close store;
  (* trash the newest snapshot; seq 1 must still carry recovery *)
  let newest = P.Store.snapshot_path ~wal ~seq:2 in
  let oc = open_out_bin newest in
  output_string oc "not a snapshot at all";
  close_out oc;
  (match P.Store.recover ~wal () with
  | Error e -> Alcotest.fail (Format.asprintf "%a" P.Store.pp_recovery_error e)
  | Ok r ->
    Alcotest.(check int) "fell back" 1 r.P.Store.snapshot_seq;
    Alcotest.(check int) "digest" digest (P.Store.digest r.P.Store.network));
  Sys.remove wal;
  List.iter
    (fun seq ->
      let p = P.Store.snapshot_path ~wal ~seq in
      if Sys.file_exists p then Sys.remove p)
    [ 0; 1; 2 ]

let props = List.map QCheck_alcotest.to_alcotest [ prop_op_roundtrip ]

let () =
  Alcotest.run "wdm_persist"
    [
      ( "crc32",
        [
          Alcotest.test_case "known answer" `Quick test_crc32_known;
          Alcotest.test_case "composable" `Quick test_crc32_compose;
        ] );
      ( "wire",
        [
          Alcotest.test_case "int roundtrips + range checks" `Quick test_wire_ints;
          Alcotest.test_case "rejects corrupt sign byte" `Quick
            test_wire_int_rejects_corrupt_top_byte;
          Alcotest.test_case "header" `Quick test_wire_header;
          Alcotest.test_case "frame classification" `Quick
            test_frame_classification;
        ] );
      ( "op-codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_op_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_op_rejects_malformed;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "restore (bitset)" `Quick
            (test_snapshot_restore Network.Bitset);
          Alcotest.test_case "restore (reference)" `Quick
            (test_snapshot_restore Network.Reference);
          Alcotest.test_case "rejects inconsistent" `Quick
            test_restore_rejects_inconsistent;
          Alcotest.test_case "state codec roundtrip" `Quick
            test_state_codec_roundtrip;
        ] );
      ( "wal",
        [
          Alcotest.test_case "write/read/tear/truncate" `Quick test_wal_write_read;
          Alcotest.test_case "detects corruption" `Quick test_wal_detects_corruption;
          Alcotest.test_case "policy validation" `Quick test_wal_policy_validation;
        ] );
      ( "store",
        [
          Alcotest.test_case "session + recover" `Quick
            test_store_session_and_recover;
          Alcotest.test_case "falls back to older snapshot" `Quick
            test_store_falls_back_to_older_snapshot;
        ] );
      ("properties", props);
    ]
