(* Tests for the fault-injection subsystem: the fault vocabulary and
   seedable schedules (lib/faults), degraded-mode routing (routing never
   touches a failed middle, laser or converter), the repair pass, the
   m + f slack rule with its adversarial verification, and churn
   campaigns under MTBF/MTTR fault processes. *)

open Wdm_core
open Wdm_multistage
module Fault = Wdm_faults.Fault
module Schedule = Wdm_faults.Schedule

let ep port wl = Endpoint.make ~port ~wl
let conn src dests = Connection.make_exn ~source:src ~destinations:dests

let net ?strategy ?x_limit ~construction ~output_model ~n ~m ~r ~k () =
  Network.create
    ~config:
      {
        Network.Config.default with
        strategy = Option.value ~default:Network.Min_intersection strategy;
        x_limit;
      }
    ~construction ~output_model
    (Topology.make_exn ~n ~m ~r ~k)

let check_ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Format.asprintf "%a" Network.pp_error e)

let churn_sut t =
  {
    Wdm_traffic.Churn.connect =
      (fun c ->
        match Network.connect t c with
        | Ok route -> Ok route.Network.id
        | Error e -> Error e);
    disconnect = (fun id -> ignore (Network.disconnect t id));
  }

let faulty_sut t =
  {
    Wdm_traffic.Churn.base = churn_sut t;
    inject = Network.inject_fault t;
    clear = Network.clear_fault t;
    reconnect =
      (fun c ->
        match Network.connect_rearrangeable t c with
        | Ok (route, _) -> Ok route.Network.id
        | Error e -> Error e);
  }

(* --- fault vocabulary ---------------------------------------------------- *)

let test_validate () =
  let v = Fault.validate ~m:4 ~r:3 ~k:2 in
  Alcotest.(check bool) "middle ok" true (Result.is_ok (v (Fault.Middle 4)));
  Alcotest.(check bool) "middle bad" true (Result.is_error (v (Fault.Middle 5)));
  Alcotest.(check bool) "input bad" true
    (Result.is_error (v (Fault.Input_module 0)));
  Alcotest.(check bool) "output ok" true
    (Result.is_ok (v (Fault.Output_module 3)));
  Alcotest.(check bool) "laser ok" true
    (Result.is_ok (v (Fault.Stage1_laser { input = 3; middle = 4; wl = 2 })));
  Alcotest.(check bool) "laser wl bad" true
    (Result.is_error (v (Fault.Stage1_laser { input = 1; middle = 1; wl = 3 })));
  Alcotest.(check bool) "stage2 middle bad" true
    (Result.is_error (v (Fault.Stage2_laser { middle = 5; output = 1; wl = 1 })));
  Alcotest.(check bool) "converter ok" true
    (Result.is_ok (v (Fault.Converter { middle = 4; output = 3 })))

let test_universe_census () =
  let m = 3 and r = 2 and k = 2 in
  let u = Fault.universe ~m ~r ~k in
  (* m middles + r inputs + r outputs + r*m*k + m*r*k lasers + m*r converters *)
  Alcotest.(check int) "universe size"
    (m + r + r + (r * m * k) + (m * r * k) + (m * r))
    (List.length u);
  Alcotest.(check int) "all valid" 0
    (List.length
       (List.filter (fun f -> Result.is_error (Fault.validate ~m ~r ~k f)) u));
  Alcotest.(check int) "no duplicates" (List.length u)
    (Fault.Set.cardinal (Fault.Set.of_list u));
  Alcotest.(check (list string)) "middles"
    [ "middle m1"; "middle m2"; "middle m3" ]
    (List.map Fault.to_string (Fault.middles ~m))

let test_fault_pp () =
  Alcotest.(check string) "stage1 laser" "laser l2 on i1->m3"
    (Fault.to_string (Fault.Stage1_laser { input = 1; middle = 3; wl = 2 }));
  Alcotest.(check string) "converter" "converter m2->o1"
    (Fault.to_string (Fault.Converter { middle = 2; output = 1 }))

(* --- schedules ----------------------------------------------------------- *)

let test_schedule_deterministic () =
  let gen seed =
    Schedule.generate
      ~rng:(Random.State.make [| seed |])
      ~universe:(Fault.universe ~m:3 ~r:2 ~k:2)
      ~mtbf:40. ~mttr:15. ~steps:300
  in
  Alcotest.(check bool) "same seed, same schedule" true (gen 9 = gen 9);
  Alcotest.(check bool) "some failures over 300 steps" true
    (Schedule.injections (gen 9) > 0)

let test_schedule_sorted_and_alternating () =
  let s =
    Schedule.generate
      ~rng:(Random.State.make [| 4 |])
      ~universe:(Fault.middles ~m:5) ~mtbf:30. ~mttr:10. ~steps:500
  in
  let rec sorted = function
    | { Schedule.step = a; _ } :: ({ Schedule.step = b; _ } :: _ as rest) ->
      a <= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by step" true (sorted s);
  (* per component, inject and clear must alternate, inject first *)
  List.iter
    (fun fault ->
      let mine =
        List.filter_map
          (fun { Schedule.action; _ } ->
            match action with
            | Schedule.Inject f when Fault.equal f fault -> Some `I
            | Schedule.Clear f when Fault.equal f fault -> Some `C
            | _ -> None)
          s
      in
      let rec alternates expected = function
        | [] -> true
        | x :: rest -> x = expected && alternates (if x = `I then `C else `I) rest
      in
      Alcotest.(check bool)
        (Fault.to_string fault ^ " alternates")
        true (alternates `I mine))
    (Fault.middles ~m:5)

let test_schedule_validation () =
  let rng = Random.State.make [| 1 |] in
  List.iter
    (fun (mtbf, mttr, steps) ->
      match
        Schedule.generate ~rng ~universe:[ Fault.Middle 1 ] ~mtbf ~mttr ~steps
      with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument")
    [ (0., 1., 10); (1., 0., 10); (1., 1., -1) ];
  Alcotest.(check (list unit)) "empty universe, empty schedule" []
    (List.map ignore
       (Schedule.generate ~rng ~universe:[] ~mtbf:1. ~mttr:1. ~steps:50))

(* --- degraded-mode routing ----------------------------------------------- *)

let drive ?(seed = 42) ?(steps = 250) ~model t =
  let spec = Topology.spec (Network.topology t) in
  ignore
    (Wdm_traffic.Churn.run
       (Random.State.make [| seed |])
       ~spec ~model
       ~fanout:(Wdm_traffic.Fanout.Uniform (1, 3))
       ~steps ~teardown_bias:0.4 (churn_sut t))

let test_routing_avoids_failed_middle () =
  let t = net ~construction:Network.Msw_dominant ~output_model:Model.MSW ~n:3
      ~m:8 ~r:3 ~k:2 () in
  Alcotest.(check (list unit)) "idle network, no victims" []
    (List.map ignore (Network.inject_fault t (Fault.Middle 3)));
  Alcotest.(check bool) "degraded" true (Network.degraded t);
  drive ~model:Model.MSW t;
  Alcotest.(check bool) "traffic flowed" true
    (List.length (Network.active_routes t) > 0);
  List.iter
    (fun (route : Network.route) ->
      List.iter
        (fun (h : Network.hop) ->
          Alcotest.(check bool) "never the failed middle" true
            (h.Network.middle <> 3))
        route.Network.hops)
    (Network.active_routes t)

let test_routing_avoids_dead_stage1_laser () =
  let t = net ~construction:Network.Maw_dominant ~output_model:Model.MAW ~n:3
      ~m:8 ~r:3 ~k:2 () in
  let dead = Fault.Stage1_laser { input = 1; middle = 2; wl = 1 } in
  ignore (Network.inject_fault t dead);
  drive ~model:Model.MAW t;
  List.iter
    (fun (route : Network.route) ->
      List.iter
        (fun (h : Network.hop) ->
          Alcotest.(check bool) "dead laser slot untouched" false
            (route.Network.input_switch = 1 && h.Network.middle = 2
             && h.Network.stage1_wl = 1))
        route.Network.hops)
    (Network.active_routes t)

let test_routing_avoids_dead_stage2_laser () =
  let t = net ~construction:Network.Maw_dominant ~output_model:Model.MAW ~n:3
      ~m:8 ~r:3 ~k:2 () in
  let dead = Fault.Stage2_laser { middle = 2; output = 1; wl = 2 } in
  ignore (Network.inject_fault t dead);
  drive ~model:Model.MAW t;
  List.iter
    (fun (route : Network.route) ->
      List.iter
        (fun (h : Network.hop) ->
          if h.Network.middle = 2 then
            List.iter
              (fun (p, w2) ->
                Alcotest.(check bool) "dead laser slot untouched" false
                  (p = 1 && w2 = 2))
              h.Network.serves)
        route.Network.hops)
    (Network.active_routes t)

let test_routing_respects_stuck_converter () =
  (* With the m2->o1 converter stuck, any route through middle 2 to
     output module 1 must pass through unconverted. *)
  let t = net ~construction:Network.Maw_dominant ~output_model:Model.MAW ~n:3
      ~m:8 ~r:3 ~k:3 () in
  ignore (Network.inject_fault t (Fault.Converter { middle = 2; output = 1 }));
  drive ~model:Model.MAW t;
  let through = ref 0 in
  List.iter
    (fun (route : Network.route) ->
      List.iter
        (fun (h : Network.hop) ->
          if h.Network.middle = 2 then
            List.iter
              (fun (p, w2) ->
                if p = 1 then begin
                  incr through;
                  Alcotest.(check int) "pass-through wavelength"
                    h.Network.stage1_wl w2
                end)
              h.Network.serves)
        route.Network.hops)
    (Network.active_routes t);
  ignore !through

let test_unserviceable_modules () =
  let t = net ~construction:Network.Msw_dominant ~output_model:Model.MSW ~n:2
      ~m:4 ~r:2 ~k:1 () in
  let c = conn (ep 1 1) [ ep 3 1 ] in
  ignore (check_ok (Network.connect t c));
  (* ports 1-2 are input module 1; ports 3-4 output module 2 *)
  let victims = Network.inject_fault t (Fault.Input_module 1) in
  Alcotest.(check int) "live route torn down" 1 (List.length victims);
  (match Network.connect t c with
  | Error (Network.Unserviceable (Fault.Input_module 1)) -> ()
  | Error e -> Alcotest.fail (Format.asprintf "wrong error: %a" Network.pp_error e)
  | Ok _ -> Alcotest.fail "routed through a dark input module");
  (* other input module unaffected *)
  ignore (check_ok (Network.connect t (conn (ep 3 1) [ ep 1 1 ])));
  ignore (Network.inject_fault t (Fault.Output_module 2));
  (match Network.connect t (conn (ep 2 1) [ ep 4 1 ]) with
  | Error (Network.Unserviceable (Fault.Input_module 1)) -> ()
  | _ -> Alcotest.fail "source check comes first");
  Network.clear_fault t (Fault.Input_module 1);
  (match Network.connect t (conn (ep 2 1) [ ep 4 1 ]) with
  | Error (Network.Unserviceable (Fault.Output_module 2)) -> ()
  | _ -> Alcotest.fail "expected dark output module");
  Network.clear_fault t (Fault.Output_module 2);
  Alcotest.(check bool) "healthy again" false (Network.degraded t);
  ignore (check_ok (Network.connect t (conn (ep 2 1) [ ep 4 1 ])))

let test_inject_idempotent_and_validated () =
  let t = net ~construction:Network.Msw_dominant ~output_model:Model.MSW ~n:2
      ~m:4 ~r:2 ~k:1 () in
  ignore (check_ok (Network.connect t (conn (ep 1 1) [ ep 3 1 ])));
  let f = Fault.Middle 1 in
  ignore (Network.inject_fault t f);
  Alcotest.(check int) "second inject finds nothing" 0
    (List.length (Network.inject_fault t f));
  Alcotest.(check int) "recorded once" 1 (List.length (Network.faults t));
  (match Network.inject_fault t (Fault.Middle 9) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument");
  match Network.inject_fault t (Fault.Stage1_laser { input = 1; middle = 1; wl = 2 }) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument (wl > k)"

let test_clear_reopens_resource () =
  (* k = 1 and every middle but m1 dead: only m1 can carry anything. *)
  let t = net ~construction:Network.Msw_dominant ~output_model:Model.MSW ~n:2
      ~m:2 ~r:2 ~k:1 () in
  ignore (Network.inject_fault t (Fault.Middle 2));
  let r1 = check_ok (Network.connect t (conn (ep 1 1) [ ep 3 1 ])) in
  Alcotest.(check int) "forced onto m1" 1
    (List.hd r1.Network.hops).Network.middle;
  (match Network.connect t (conn (ep 2 1) [ ep 4 1 ]) with
  | Error (Network.Blocked _) -> ()
  | _ -> Alcotest.fail "stage1 fiber i1->m1 is saturated at k = 1");
  Network.clear_fault t (Fault.Middle 2);
  let r2 = check_ok (Network.connect t (conn (ep 2 1) [ ep 4 1 ])) in
  Alcotest.(check int) "repaired middle back in rotation" 2
    (List.hd r2.Network.hops).Network.middle

(* --- repair pass --------------------------------------------------------- *)

let test_repair_rehomes_victims () =
  (* Provision one module of slack, load the fabric, kill a middle:
     every victim must be re-homed and the survivors left alone. *)
  let eval = Conditions.msw_dominant ~n:3 ~r:3 in
  let t = net ~construction:Network.Msw_dominant ~output_model:Model.MSW ~n:3
      ~m:(eval.Conditions.m_min + 1) ~r:3 ~k:2 () in
  drive ~model:Model.MSW ~seed:7 t;
  let before = List.length (Network.active_routes t) in
  Alcotest.(check bool) "fabric is loaded" true (before > 3);
  (* kill the busiest middle so there are victims *)
  let busiest =
    List.concat_map
      (fun (r : Network.route) ->
        List.map (fun (h : Network.hop) -> h.Network.middle) r.Network.hops)
      (Network.active_routes t)
    |> List.fold_left
         (fun acc j -> if List.mem_assoc j acc then acc else (j, ()) :: acc)
         [] |> List.hd |> fst
  in
  let victims = Network.inject_fault t (Fault.Middle busiest) in
  Alcotest.(check bool) "victims exist" true (victims <> []);
  let outcome = Scheduler.repair t victims in
  Alcotest.(check int) "all re-homed" (List.length victims)
    (List.length outcome.Scheduler.repaired);
  Alcotest.(check int) "none dropped" 0 (List.length outcome.Scheduler.dropped);
  Alcotest.(check int) "population restored" before
    (List.length (Network.active_routes t));
  List.iter
    (fun (route : Network.route) ->
      List.iter
        (fun (h : Network.hop) ->
          Alcotest.(check bool) "no route on the dead middle" true
            (h.Network.middle <> busiest))
        route.Network.hops)
    (Network.active_routes t)

let test_repair_after_clear_restores_everything () =
  (* Acceptance: victims that cannot be re-homed while degraded are all
     restored by a repair pass once every fault clears. *)
  let t = net ~construction:Network.Msw_dominant ~output_model:Model.MSW ~n:3
      ~m:5 ~r:3 ~k:1 () in
  drive ~model:Model.MSW ~seed:11 ~steps:400 t;
  let before = List.length (Network.active_routes t) in
  Alcotest.(check bool) "fabric is loaded" true (before > 3);
  let faults = [ Fault.Middle 1; Fault.Middle 2; Fault.Middle 3 ] in
  let victims = List.concat_map (Network.inject_fault t) faults in
  Alcotest.(check bool) "victims exist" true (victims <> []);
  let degraded = Scheduler.repair t victims in
  let lost = List.map fst degraded.Scheduler.dropped in
  List.iter (Network.clear_fault t) faults;
  Alcotest.(check bool) "healthy" false (Network.degraded t);
  let healed = Scheduler.repair t lost in
  Alcotest.(check int) "every connection restored" 0
    (List.length healed.Scheduler.dropped);
  Alcotest.(check int) "population restored" before
    (List.length (Network.active_routes t))

let test_repair_reports_unserviceable () =
  let t = net ~construction:Network.Msw_dominant ~output_model:Model.MSW ~n:2
      ~m:4 ~r:2 ~k:1 () in
  ignore (check_ok (Network.connect t (conn (ep 1 1) [ ep 3 1 ])));
  let victims = Network.inject_fault t (Fault.Input_module 1) in
  let outcome = Scheduler.repair t victims in
  Alcotest.(check int) "nothing repairable" 0
    (List.length outcome.Scheduler.repaired);
  match outcome.Scheduler.dropped with
  | [ (_, Network.Unserviceable (Fault.Input_module 1)) ] -> ()
  | _ -> Alcotest.fail "expected one Unserviceable drop"

(* --- the m + f slack rule ------------------------------------------------ *)

let test_provision_arithmetic () =
  let s =
    Wdm_analysis.Fault_tolerance.provision ~construction:Network.Msw_dominant
      ~n:2 ~r:2 ~k:1 ~f:2
  in
  Alcotest.(check int) "m_min" 4 s.Wdm_analysis.Fault_tolerance.eval.Conditions.m_min;
  Alcotest.(check int) "m_required" 6 s.Wdm_analysis.Fault_tolerance.m_required;
  List.iter
    (fun (m, f, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "tolerates m=%d f=%d" m f)
        expected
        (Wdm_analysis.Fault_tolerance.tolerates
           ~construction:Network.Msw_dominant ~n:2 ~r:2 ~k:1 ~m ~f))
    [ (4, 0, true); (5, 1, true); (4, 1, false); (6, 2, true); (5, -1, false) ];
  match
    Wdm_analysis.Fault_tolerance.provision ~construction:Network.Msw_dominant
      ~n:2 ~r:2 ~k:1 ~f:(-1)
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_slack_verified_adversarially () =
  (* n = r = 2, k = 1: the searched frontier is m = 3 (see the adversary
     suite).  At m = 4 every 1-fault degradation keeps m_eff = 3, so the
     exhaustive search must prove every one nonblocking. *)
  let checks =
    Wdm_analysis.Fault_tolerance.verify_middle_slack ~all_subsets:true
      ~construction:Network.Msw_dominant ~output_model:Model.MSW ~n:2 ~r:2 ~k:1
      ~m:4 ~f:1 ()
  in
  Alcotest.(check int) "C(4,1) degradations searched" 4 (List.length checks);
  List.iter
    (fun (c : Wdm_analysis.Fault_tolerance.check) ->
      match c.Wdm_analysis.Fault_tolerance.verdict with
      | Wdm_analysis.Adversary.Nonblocking_proved _ -> ()
      | v ->
        Alcotest.fail
          (Format.asprintf "%a: expected proof, got %a"
             Wdm_analysis.Fault_tolerance.pp_check c
             Wdm_analysis.Adversary.pp_verdict v))
    checks

let test_slack_exhausted_finds_blocking () =
  (* One fault below the frontier (m = 3, f = 1 -> m_eff = 2) must
     produce a blocking witness for every choice of failed middle. *)
  let checks =
    Wdm_analysis.Fault_tolerance.verify_middle_slack ~all_subsets:true
      ~construction:Network.Msw_dominant ~output_model:Model.MSW ~n:2 ~r:2 ~k:1
      ~m:3 ~f:1 ()
  in
  Alcotest.(check int) "C(3,1) degradations searched" 3 (List.length checks);
  List.iter
    (fun (c : Wdm_analysis.Fault_tolerance.check) ->
      match c.Wdm_analysis.Fault_tolerance.verdict with
      | Wdm_analysis.Adversary.Blocking _ -> ()
      | v ->
        Alcotest.fail
          (Format.asprintf "expected a blocking witness, got %a"
             Wdm_analysis.Adversary.pp_verdict v))
    checks

(* --- churn under fault schedules ----------------------------------------- *)

let test_empty_schedule_matches_plain_run () =
  let spec_net () =
    net ~construction:Network.Msw_dominant ~output_model:Model.MSW ~n:3 ~m:8
      ~r:3 ~k:2 ()
  in
  let t1 = spec_net () and t2 = spec_net () in
  let spec = Topology.spec (Network.topology t1) in
  let plain =
    Wdm_traffic.Churn.run
      (Random.State.make [| 99 |])
      ~spec ~model:Model.MSW
      ~fanout:(Wdm_traffic.Fanout.Uniform (1, 3))
      ~steps:300 ~teardown_bias:0.4 (churn_sut t1)
  in
  let s =
    Wdm_traffic.Churn.run_with_faults
      (Random.State.make [| 99 |])
      ~spec ~model:Model.MSW
      ~fanout:(Wdm_traffic.Fanout.Uniform (1, 3))
      ~steps:300 ~teardown_bias:0.4 ~schedule:[] (faulty_sut t2)
  in
  Alcotest.(check bool) "identical trajectory" true (s.Wdm_traffic.Churn.churn = plain);
  Alcotest.(check int) "no faults" 0 s.Wdm_traffic.Churn.injected

let test_slack_absorbs_f_failures_over_long_churn () =
  (* Acceptance: f = 2 middles down on a fabric provisioned at
     m_min + 2, 5000 seeded churn steps, zero blocking. *)
  let f = 2 in
  let eval = Conditions.msw_dominant ~n:3 ~r:3 in
  let t = net ~construction:Network.Msw_dominant ~output_model:Model.MSW ~n:3
      ~m:(eval.Conditions.m_min + f) ~r:3 ~k:2 () in
  let s =
    Wdm_traffic.Churn.run_with_faults
      (Random.State.make [| 2026 |])
      ~spec:(Topology.spec (Network.topology t))
      ~model:Model.MSW
      ~fanout:(Wdm_traffic.Fanout.Zipf { max = 9; s = 1.1 })
      ~steps:5000 ~teardown_bias:0.35
      ~schedule:[ (50, `Inject (Fault.Middle 1)); (50, `Inject (Fault.Middle 2)) ]
      (faulty_sut t)
  in
  Alcotest.(check int) "two failures applied" 2 s.Wdm_traffic.Churn.injected;
  Alcotest.(check int) "no victim dropped" 0 s.Wdm_traffic.Churn.dropped;
  Alcotest.(check int) "nonblocking while degraded" 0
    s.Wdm_traffic.Churn.churn.Wdm_traffic.Churn.blocked;
  Alcotest.(check bool) "traffic flowed" true
    (s.Wdm_traffic.Churn.churn.Wdm_traffic.Churn.accepted > 500)

let test_zero_slack_degrades_but_repairs () =
  (* Acceptance: with no slack, one failed middle produces measurable
     degraded-mode blocking, and the repair pass re-homes every victim
     the degraded fabric can still carry. *)
  let t = net ~construction:Network.Msw_dominant ~output_model:Model.MSW ~n:4
      ~m:5 ~r:4 ~k:1 () in
  let s =
    Wdm_traffic.Churn.run_with_faults
      (Random.State.make [| 23 |])
      ~spec:(Topology.spec (Network.topology t))
      ~model:Model.MSW
      ~fanout:(Wdm_traffic.Fanout.Uniform (2, 4))
      ~steps:600 ~teardown_bias:0.3
      ~schedule:[ (1, `Inject (Fault.Middle 5)) ]
      (faulty_sut t)
  in
  let open Wdm_traffic.Churn in
  Alcotest.(check bool) "degraded blocking observed" true (s.blocked_degraded > 0);
  Alcotest.(check int) "all blocking was degraded-mode" s.churn.blocked
    s.blocked_degraded;
  Alcotest.(check int) "victim ledger balances" s.victims (s.repaired + s.dropped)

let test_churn_under_generated_schedule () =
  (* End-to-end: an MTBF/MTTR schedule over every middle, with repair;
     bookkeeping must balance and the fabric must end consistent. *)
  let eval = Conditions.msw_dominant ~n:3 ~r:3 in
  let m = eval.Conditions.m_min + 1 in
  let t = net ~construction:Network.Msw_dominant ~output_model:Model.MSW ~n:3
      ~m ~r:3 ~k:2 () in
  let schedule =
    Schedule.generate
      ~rng:(Random.State.make [| 8 |])
      ~universe:(Fault.middles ~m) ~mtbf:400. ~mttr:150. ~steps:2000
    |> List.map (fun { Schedule.step; action } ->
           match action with
           | Schedule.Inject f -> (step, `Inject f)
           | Schedule.Clear f -> (step, `Clear f))
  in
  let s =
    Wdm_traffic.Churn.run_with_faults
      (Random.State.make [| 8 |])
      ~spec:(Topology.spec (Network.topology t))
      ~model:Model.MSW
      ~fanout:(Wdm_traffic.Fanout.Uniform (1, 3))
      ~steps:2000 ~teardown_bias:0.35 (faulty_sut t) ~schedule
  in
  let open Wdm_traffic.Churn in
  Alcotest.(check bool) "faults exercised" true (s.injected > 0);
  Alcotest.(check int) "victim ledger balances" s.victims (s.repaired + s.dropped);
  (* every route left standing avoids every fault still in force *)
  let dead =
    List.filter_map
      (function Fault.Middle j -> Some j | _ -> None)
      (Network.faults t)
  in
  List.iter
    (fun (route : Network.route) ->
      List.iter
        (fun (h : Network.hop) ->
          Alcotest.(check bool) "no live route on a dead middle" false
            (List.mem h.Network.middle dead))
        route.Network.hops)
    (Network.active_routes t)

let () =
  Alcotest.run "wdm_faults"
    [
      ( "vocabulary",
        [
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "universe census" `Quick test_universe_census;
          Alcotest.test_case "printing" `Quick test_fault_pp;
        ] );
      ( "schedules",
        [
          Alcotest.test_case "deterministic" `Quick test_schedule_deterministic;
          Alcotest.test_case "sorted, alternating" `Quick
            test_schedule_sorted_and_alternating;
          Alcotest.test_case "validation" `Quick test_schedule_validation;
        ] );
      ( "degraded-routing",
        [
          Alcotest.test_case "avoids failed middle" `Slow
            test_routing_avoids_failed_middle;
          Alcotest.test_case "avoids dead stage1 laser" `Slow
            test_routing_avoids_dead_stage1_laser;
          Alcotest.test_case "avoids dead stage2 laser" `Slow
            test_routing_avoids_dead_stage2_laser;
          Alcotest.test_case "stuck converter passes through" `Slow
            test_routing_respects_stuck_converter;
          Alcotest.test_case "dark modules unserviceable" `Quick
            test_unserviceable_modules;
          Alcotest.test_case "idempotent, validated" `Quick
            test_inject_idempotent_and_validated;
          Alcotest.test_case "clear reopens the resource" `Quick
            test_clear_reopens_resource;
        ] );
      ( "repair",
        [
          Alcotest.test_case "re-homes all victims given slack" `Slow
            test_repair_rehomes_victims;
          Alcotest.test_case "restores everything after clear" `Slow
            test_repair_after_clear_restores_everything;
          Alcotest.test_case "reports unserviceable victims" `Quick
            test_repair_reports_unserviceable;
        ] );
      ( "slack-rule",
        [
          Alcotest.test_case "provision arithmetic" `Quick
            test_provision_arithmetic;
          Alcotest.test_case "m_min+1 survives any 1 fault (exhaustive)" `Slow
            test_slack_verified_adversarially;
          Alcotest.test_case "below frontier blocks (exhaustive)" `Slow
            test_slack_exhausted_finds_blocking;
        ] );
      ( "fault-churn",
        [
          Alcotest.test_case "empty schedule = plain run" `Slow
            test_empty_schedule_matches_plain_run;
          Alcotest.test_case "m_min+f absorbs f failures (5000 steps)" `Slow
            test_slack_absorbs_f_failures_over_long_churn;
          Alcotest.test_case "zero slack degrades; repair re-homes" `Slow
            test_zero_slack_degrades_but_repairs;
          Alcotest.test_case "MTBF/MTTR campaign stays consistent" `Slow
            test_churn_under_generated_schedule;
        ] );
    ]
