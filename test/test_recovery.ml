(* Lockstep crash-recovery equivalence.

   A seeded churn run under a middle-fault schedule is recorded to a
   WAL with every snapshot retained.  We then simulate a crash at every
   record boundary: truncate a copy of the WAL there, recover, and
   check that the recovered network is byte-for-byte the network an
   uninterrupted run had at that point (state digest), and that the
   next 1000 ops of a deterministic continuation produce identical hop
   checksums and blocked counts on both.  Interior byte flips must
   surface as corruption-with-offset or recover to a legitimate prefix
   state — never silently diverge.  The whole sweep runs for both link
   implementations. *)

open Wdm_core
open Wdm_multistage
module P = Wdm_persist
module Fault = Wdm_faults.Fault
module Schedule = Wdm_faults.Schedule
module Churn = Wdm_traffic.Churn
module Tel = Wdm_telemetry

let n = 3
let r = 3
let k = 2
let m = 6
let nports = n * r
let seed = 1848
let steps = 600
let continuation_ops = 1000

let ep port wl = Endpoint.make ~port ~wl

let make_net ?telemetry impl =
  Network.create
    ~config:{ Network.Config.default with telemetry; link_impl = Some impl }
    ~construction:Network.Msw_dominant ~output_model:Model.MSW
    (Topology.make_exn ~n ~m ~r ~k)

(* --- file plumbing ------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let snapshot_seqs wal =
  let rec go seq acc =
    let p = P.Store.snapshot_path ~wal ~seq in
    if Sys.file_exists p then go (seq + 1) (seq :: acc) else List.rev acc
  in
  go 0 []

let copy_snapshots ~from_wal ~to_wal =
  List.iter
    (fun seq ->
      write_file
        (P.Store.snapshot_path ~wal:to_wal ~seq)
        (read_file (P.Store.snapshot_path ~wal:from_wal ~seq)))
    (snapshot_seqs from_wal)

let remove_store_files wal =
  List.iter
    (fun seq -> Sys.remove (P.Store.snapshot_path ~wal ~seq))
    (snapshot_seqs wal);
  if Sys.file_exists wal then Sys.remove wal

(* --- recording ----------------------------------------------------------- *)

(* the journalled SUT wrappers, same shape as the wdmnet CLI's *)
let logged_fsut store net =
  let sut =
    {
      Churn.connect =
        (fun c ->
          P.Store.log store (P.Op.Connect c);
          match Network.connect net c with
          | Ok route -> Ok route.Network.id
          | Error e -> Error e);
      disconnect =
        (fun id ->
          P.Store.log store (P.Op.Disconnect id);
          ignore (Network.disconnect net id));
    }
  in
  {
    Churn.base = sut;
    inject =
      (fun f ->
        P.Store.log store (P.Op.Inject_fault f);
        Network.inject_fault net f);
    clear =
      (fun f ->
        P.Store.log store (P.Op.Clear_fault f);
        Network.clear_fault net f);
    reconnect =
      (fun c ->
        let outcome =
          match Network.connect_rearrangeable net c with
          | Ok (route, _) -> Ok route.Network.id
          | Error e -> Error e
        in
        P.Store.log store
          (P.Op.Repair { connection = c; rehomed = Result.is_ok outcome });
        outcome);
  }

let fault_schedule () =
  Schedule.generate
    ~rng:(Random.State.make [| seed; 0xfa |])
    ~universe:
      (List.filter
         (function Fault.Middle _ -> true | _ -> false)
         (Fault.universe ~m ~r ~k))
    ~mtbf:150. ~mttr:80. ~steps
  |> List.map (fun { Schedule.step; action } ->
         match action with
         | Schedule.Inject fault -> (step, `Inject fault)
         | Schedule.Clear fault -> (step, `Clear fault))

let record ~impl ~wal =
  let net = make_net impl in
  let store = P.Store.start ~retain:max_int ~wal net in
  let fsut = logged_fsut store net in
  let persist =
    {
      Churn.policy = Churn.Every_n_ops 100;
      checkpoint = (fun ~ops:_ -> P.Store.checkpoint store net);
    }
  in
  let topo = Network.topology net in
  let (_ : Churn.fault_stats) =
    Churn.run_with_faults ~persist
      (Random.State.make [| seed |])
      ~spec:(Topology.spec topo) ~model:Model.MSW
      ~fanout:(Wdm_traffic.Fanout.Zipf { max = nports; s = 1.1 })
      ~steps ~teardown_bias:0.35 ~schedule:(fault_schedule ()) fsut
  in
  P.Store.checkpoint store net;
  let records = P.Store.wal_records store in
  P.Store.close store;
  (net, records)

(* --- deterministic continuation ------------------------------------------ *)

(* Runs [continuation_ops] RNG-free ops against [net]: an arithmetic
   walk of MSW-legal connection requests, with every third op tearing
   down the lowest-id active route.  Returns the accumulated hop
   checksum over every admitted/released route and the blocked count —
   two nets in the same state must return the same pair. *)
let continuation net =
  let checksum = ref 0 in
  let blocked = ref 0 in
  let active = ref [] in
  List.iter
    (fun (route : Network.route) -> active := route.Network.id :: !active)
    (Network.snapshot net).Network.s_routes;
  for i = 0 to continuation_ops - 1 do
    if i mod 3 = 2 && !active <> [] then begin
      let lowest = List.fold_left min max_int !active in
      active := List.filter (fun id -> id <> lowest) !active;
      match Network.disconnect net lowest with
      | Ok route -> checksum := P.Op.route_checksum !checksum route
      | Error e -> Alcotest.fail
          ("continuation disconnect failed: "
          ^ Network.Error.disconnect_to_string e)
    end
    else begin
      let wl = (i mod k) + 1 in
      let src = ep ((i * 7 mod nports) + 1) wl in
      let fanout = (i mod 3) + 1 in
      let dest_ports =
        List.sort_uniq compare
          (List.init fanout (fun j -> ((i * 5) + (j * 11)) mod nports))
      in
      let conn =
        Connection.make_exn ~source:src
          ~destinations:(List.map (fun p -> ep (p + 1) wl) dest_ports)
      in
      match Network.connect net conn with
      | Ok route ->
        checksum := P.Op.route_checksum !checksum route;
        active := route.Network.id :: !active
      | Error _ -> incr blocked
    end
  done;
  (!checksum, !blocked)

(* --- the boundary sweep --------------------------------------------------- *)

let impl_name = function
  | Network.Bitset -> "bitset"
  | Network.Reference -> "reference"

type sweep = {
  wal : string;
  contents : string;  (** the full recorded WAL *)
  boundaries : int array;  (** record start offsets, then EOF *)
  prefix_digests : int array;  (** digest after [i] ops *)
  final_digest : int;
}

let recorded : (Network.link_impl * sweep) list ref = ref []

let sweep_of impl =
  match List.assoc_opt impl !recorded with
  | Some s -> s
  | None ->
    let wal = Printf.sprintf "lockstep_%s.wal" (impl_name impl) in
    let live_net, records = record ~impl ~wal in
    if records < 500 then
      Alcotest.failf "recorded only %d WAL records, need >= 500" records;
    let ops =
      match P.Wal.read wal with
      | Ok { ops; tear = None } -> ops
      | Ok _ -> Alcotest.fail "freshly recorded WAL reports a tear"
      | Error e -> Alcotest.fail e
    in
    let contents = read_file wal in
    let boundaries =
      Array.of_list (List.map fst ops @ [ String.length contents ])
    in
    (* replay the ops against a fresh net, fingerprinting every prefix *)
    let ref_net = make_net impl in
    let prefix_digests = Array.make (Array.length boundaries) 0 in
    prefix_digests.(0) <- P.Store.digest ref_net;
    List.iteri
      (fun i (_, op) ->
        (match P.Op.apply ref_net op with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "replay of op %d failed: %s" i e);
        prefix_digests.(i + 1) <- P.Store.digest ref_net)
      ops;
    let final_digest = P.Store.digest live_net in
    if prefix_digests.(Array.length boundaries - 1) <> final_digest then
      Alcotest.fail "full replay does not reproduce the recorded network";
    let s = { wal; contents; boundaries; prefix_digests; final_digest } in
    recorded := (impl, s) :: !recorded;
    s

(* Crash at every record boundary: truncate, recover, compare digests,
   then race a 1000-op continuation against the uninterrupted network. *)
let test_every_boundary impl () =
  let s = sweep_of impl in
  let trunc = s.wal ^ ".trunc" in
  copy_snapshots ~from_wal:s.wal ~to_wal:trunc;
  let ref_net = make_net impl in
  Array.iteri
    (fun i boundary ->
      (* ref_net holds the uninterrupted state after i ops *)
      write_file trunc (String.sub s.contents 0 boundary);
      (match P.Store.recover ~wal:trunc () with
      | Error e ->
        Alcotest.failf "recovery at boundary %d (byte %d): %a" i boundary
          P.Store.pp_recovery_error e
      | Ok rec_ ->
        if P.Store.digest rec_.P.Store.network <> s.prefix_digests.(i) then
          Alcotest.failf "digest mismatch at boundary %d (byte %d)" i boundary;
        if rec_.P.Store.tear <> None then
          Alcotest.failf "clean cut at boundary %d reported a tear" i;
        let cs_rec, bl_rec = continuation rec_.P.Store.network in
        let cs_ref, bl_ref = continuation (Network.copy ref_net) in
        if cs_rec <> cs_ref || bl_rec <> bl_ref then
          Alcotest.failf
            "continuation diverged at boundary %d: checksum %d vs %d, blocked \
             %d vs %d"
            i cs_rec cs_ref bl_rec bl_ref);
      (* advance the uninterrupted run past op i *)
      if i < Array.length s.boundaries - 1 then
        match P.Wire.read_frame s.contents ~pos:boundary with
        | P.Wire.Frame { payload; _ } -> (
          match P.Op.decode_string payload with
          | Ok op -> ignore (P.Op.apply ref_net op)
          | Error e -> Alcotest.fail e)
        | _ -> Alcotest.fail "boundary does not start a frame")
    s.boundaries;
  remove_store_files trunc

(* The acceptance criterion's telemetry leg: recover at full length,
   run the continuation on the recovered and the uninterrupted network,
   each with a fresh sink, and require identical counter values. *)
let test_counters_after_recovery impl () =
  let s = sweep_of impl in
  let trunc = s.wal ^ ".tel" in
  copy_snapshots ~from_wal:s.wal ~to_wal:trunc;
  write_file trunc s.contents;
  let sink_rec = Tel.Sink.create () in
  let sink_ref = Tel.Sink.create () in
  (match P.Store.recover ~telemetry:sink_rec ~wal:trunc () with
  | Error e -> Alcotest.failf "%a" P.Store.pp_recovery_error e
  | Ok rec_ ->
    (* uninterrupted twin: replay all ops on a fresh instrumented net,
       then strip the replay-phase counters by snapshotting a restored
       clone instead — restore gives a clean-slate instrumented net in
       the same state *)
    let ref_net =
      Network.restore ~telemetry:sink_ref (Network.snapshot rec_.P.Store.network)
    in
    let cs_rec, bl_rec = continuation rec_.P.Store.network in
    let cs_ref, bl_ref = continuation ref_net in
    Alcotest.(check int) "checksum" cs_ref cs_rec;
    Alcotest.(check int) "blocked" bl_ref bl_rec;
    let counters snap =
      List.filter_map
        (fun (name, _, v) ->
          (* persist_* differ by construction: only recovery increments
             them; the network-level counters are the contract *)
          if String.length name >= 7 && String.sub name 0 7 = "wdmnet_" then
            Some (name, v)
          else None)
        snap.Tel.Metrics.counters
    in
    let c_rec = counters (Tel.Metrics.snapshot sink_rec.Tel.Sink.metrics) in
    let c_ref = counters (Tel.Metrics.snapshot sink_ref.Tel.Sink.metrics) in
    Alcotest.(check (list (pair string int)))
      "continuation counters" c_ref c_rec);
  remove_store_files trunc

(* Interior byte flips: recovery must either name the damage (an error
   carrying the file and offset) or land on a legitimate prefix state —
   flipping a length field can only turn the tail into a torn write. *)
let test_byte_flips impl () =
  let s = sweep_of impl in
  let flip = s.wal ^ ".flip" in
  copy_snapshots ~from_wal:s.wal ~to_wal:flip;
  let len = String.length s.contents in
  let digests = Array.to_list s.prefix_digests in
  let offsets =
    [
      P.Wire.header_len;  (* first record's length field *)
      P.Wire.header_len + 5;  (* first record's CRC *)
      P.Wire.header_len + 9;  (* first record's payload *)
      len / 3;
      len / 2;
      (2 * len / 3) + 1;
      len - 2;
    ]
  in
  List.iter
    (fun off ->
      let b = Bytes.of_string s.contents in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x10));
      write_file flip (Bytes.to_string b);
      match P.Store.recover ~wal:flip () with
      | Error (P.Store.Corrupt { offset; _ }) ->
        if offset < P.Wire.header_len || offset > len then
          Alcotest.failf "flip at %d: implausible corruption offset %d" off
            offset
      | Error (P.Store.No_snapshot _) ->
        (* acceptable only if the flip gutted the WAL so early that no
           snapshot's offset is a boundary any more *)
        if off > len / 4 then
          Alcotest.failf "flip at %d: lost all snapshots" off
      | Ok rec_ ->
        let d = P.Store.digest rec_.P.Store.network in
        if not (List.mem d digests) then
          Alcotest.failf
            "flip at %d: recovery silently diverged from every prefix state"
            off)
    offsets;
  remove_store_files flip

(* A cut mid-record is a torn write: recovery reports (and truncates)
   the tear and lands on the boundary before it. *)
let test_torn_tail impl () =
  let s = sweep_of impl in
  let torn = s.wal ^ ".torn" in
  copy_snapshots ~from_wal:s.wal ~to_wal:torn;
  let nb = Array.length s.boundaries in
  let boundary = s.boundaries.(nb / 2) in
  let i = nb / 2 in
  write_file torn (String.sub s.contents 0 (boundary + 5));
  (match P.Store.recover ~wal:torn () with
  | Error e -> Alcotest.failf "%a" P.Store.pp_recovery_error e
  | Ok rec_ ->
    Alcotest.(check (option int)) "tear reported" (Some boundary)
      rec_.P.Store.tear;
    Alcotest.(check int) "state is the pre-tear prefix" s.prefix_digests.(i)
      (P.Store.digest rec_.P.Store.network);
    (* the tear was truncated: a second recovery is clean *)
    match P.Store.recover ~wal:torn () with
    | Ok rec2 ->
      Alcotest.(check (option int)) "truncated" None rec2.P.Store.tear;
      Alcotest.(check int) "same state" s.prefix_digests.(i)
        (P.Store.digest rec2.P.Store.network)
    | Error e -> Alcotest.failf "%a" P.Store.pp_recovery_error e);
  remove_store_files torn

let cleanup impl () =
  match List.assoc_opt impl !recorded with
  | Some s -> remove_store_files s.wal
  | None -> ()

let for_impl impl =
  [
    Alcotest.test_case "crash at every record boundary" `Slow
      (test_every_boundary impl);
    Alcotest.test_case "telemetry counters after recovery" `Quick
      (test_counters_after_recovery impl);
    Alcotest.test_case "interior byte flips never diverge" `Quick
      (test_byte_flips impl);
    Alcotest.test_case "torn tail truncates to prefix" `Quick
      (test_torn_tail impl);
    Alcotest.test_case "cleanup" `Quick (cleanup impl);
  ]

let () =
  Alcotest.run "crash_recovery"
    [
      ("bitset", for_impl Network.Bitset);
      ("reference", for_impl Network.Reference);
    ]
