(* Coverage for the small surfaces: printers, descriptors, label
   helpers and diagram renderers.  These are the parts humans read in
   example output and error messages, so their exact shape is pinned. *)

open Wdm_core
open Wdm_multistage
module An = Wdm_analysis

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  go 0

let ep port wl = Endpoint.make ~port ~wl

(* --- wavelengths ---------------------------------------------------------- *)

let test_wavelength () =
  Alcotest.(check (list int)) "all" [ 1; 2; 3 ] (Wavelength.all ~k:3);
  Alcotest.(check bool) "valid" true (Wavelength.valid ~k:3 3);
  Alcotest.(check bool) "invalid 0" false (Wavelength.valid ~k:3 0);
  Alcotest.(check bool) "invalid 4" false (Wavelength.valid ~k:3 4);
  Alcotest.(check string) "to_string" "l2" (Wavelength.to_string 2)

(* --- printers -------------------------------------------------------------- *)

let test_connection_pp () =
  let c =
    Connection.make_exn ~source:(ep 1 2) ~destinations:[ ep 3 1; ep 2 2 ]
  in
  Alcotest.(check string) "rendering" "(1,l2) -> {(2,l2); (3,l1)}"
    (Format.asprintf "%a" Connection.pp c)

let test_assignment_pp_error () =
  let msg e = Format.asprintf "%a" Assignment.pp_error e in
  Alcotest.(check string) "source reused" "source (1,l2) used twice"
    (msg (Assignment.Source_reused (ep 1 2)));
  Alcotest.(check bool) "model violation mentions model" true
    (contains
       (msg
          (Assignment.Model_violation
             {
               model = Model.MSW;
               connection = Connection.unicast ~source:(ep 1 1) ~destination:(ep 2 2);
             }))
       "MSW")

let test_network_spec_describe () =
  let d = Network_spec.describe (Network_spec.make_exn ~n:4 ~k:3) in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains d needle))
    [ "4x4"; "3 wavelengths"; "12 addressable endpoints" ]

let test_topology_pp () =
  let s = Format.asprintf "%a" Topology.pp (Topology.make_exn ~n:2 ~m:4 ~r:3 ~k:2) in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains s needle))
    [ "N=6"; "r=3"; "2x4"; "4 of 3x3"; "k=2" ]

let test_conditions_pp () =
  let s = Format.asprintf "%a" Conditions.pp_evaluation (Conditions.msw_dominant ~n:4 ~r:4) in
  Alcotest.(check string) "evaluation" "x=2 bound=12.000 m_min=13" s

(* [create_legacy] — the pre-Config optional-argument constructor — is
   gone.  Its one-release migration window closed: the call below is
   what the retired compat test exercised, kept as a quoted snippet so
   the historical calling convention stays greppable:

   {[
     Network.create_legacy ~strategy:Network.First_fit ~x_limit:2
       ~construction:Network.Msw_dominant ~output_model:Model.MSW topo
   ]}

   The equivalence it guarded (optional args = packed Config.t) is now
   vacuous; what remains worth holding is that the Config form accepts
   the same fields the legacy form took. *)
let test_create_legacy_compat () =
  let topo = Topology.make_exn ~n:4 ~m:13 ~r:4 ~k:2 in
  let current =
    Network.create
      ~config:
        {
          Network.Config.default with
          strategy = Network.First_fit;
          x_limit = Some 2;
        }
      ~construction:Network.Msw_dominant ~output_model:Model.MSW topo
  in
  Alcotest.(check int) "x_limit" 2 (Network.x_limit current);
  Alcotest.(check bool) "strategy" true
    (Network.strategy current = Network.First_fit);
  let conn =
    Connection.make_exn ~source:(ep 1 1)
      ~destinations:[ ep 1 1; ep 5 1; ep 9 1 ]
  in
  let ra = Result.get_ok (Network.connect current conn) in
  Alcotest.(check bool) "routes" true (ra.Network.hops <> [])

let test_network_pp_state () =
  let t =
    Network.create ~construction:Network.Msw_dominant ~output_model:Model.MSW
      (Topology.make_exn ~n:2 ~m:4 ~r:2 ~k:2)
  in
  ignore
    (Result.get_ok
       (Network.connect t
          (Connection.unicast ~source:(ep 1 1) ~destination:(ep 3 1))));
  let s = Format.asprintf "%a" Network.pp_state t in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains s needle))
    [ "stage 1"; "M_1"; "active routes: 1" ]

let test_churn_pp_stats () =
  let s =
    Format.asprintf "%a" Wdm_traffic.Churn.pp_stats
      {
        Wdm_traffic.Churn.attempts = 10;
        accepted = 8;
        blocked = 2;
        torn_down = 3;
        peak_active = 5;
      }
  in
  Alcotest.(check string) "stats"
    "10 attempts, 8 accepted, 2 blocked, 3 torn down, peak 5 active" s

let test_recursive_pp () =
  match Recursive.design ~stages:5 ~big_n:8 ~k:2 ~output_model:Model.MSW with
  | Error e -> Alcotest.fail e
  | Ok d ->
    let s = Format.asprintf "%a" Recursive.pp d in
    List.iter
      (fun needle -> Alcotest.(check bool) needle true (contains s needle))
      [ "5-stage"; "N=8"; "clos(n=2"; "xbar 2x2" ];
    (match Recursive.view d with
    | Recursive.Clos { n = 2; r = 4; middle = Recursive.Clos { middle = Recursive.Xbar 2; _ }; _ } ->
      ()
    | _ -> Alcotest.fail "unexpected view shape");
    Alcotest.(check int) "k accessor" 2 (Recursive.k d);
    Alcotest.(check bool) "model accessor" true
      (Model.equal Model.MSW (Recursive.output_model d))

(* --- labels ----------------------------------------------------------------- *)

let test_labels () =
  Alcotest.(check string) "in" "in:7" (Wdm_crossbar.Labels.input_port 7);
  Alcotest.(check string) "out" "out:7" (Wdm_crossbar.Labels.output_port 7);
  Alcotest.(check (option int)) "parse" (Some 12)
    (Wdm_crossbar.Labels.parse_output_port "out:12");
  Alcotest.(check (option int)) "parse junk" None
    (Wdm_crossbar.Labels.parse_output_port "in:12");
  Alcotest.(check string) "origin" "(3,l2)"
    (Wdm_crossbar.Labels.origin (ep 3 2))

(* --- diagrams ----------------------------------------------------------------- *)

let test_diagrams () =
  let fig1 = An.Diagram.fig1_network (Network_spec.make_exn ~n:3 ~k:2) in
  Alcotest.(check bool) "fig1 endpoints" true (contains fig1 "6 addressable");
  let fig2 = An.Diagram.fig2_models () in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains fig2 needle))
    [ "MSW"; "MSDW"; "MAW"; "legal under" ];
  let fig5 = An.Diagram.fig5_space_crossbar ~n:4 in
  Alcotest.(check bool) "fig5 gates" true (contains fig5 "(g44)");
  Alcotest.(check bool) "fig5 crosspoints" true (contains fig5 "16 crosspoints");
  let topo = Topology.make_exn ~n:2 ~m:4 ~r:2 ~k:2 in
  let fig9 =
    An.Diagram.fig9_construction ~construction:Network.Maw_dominant
      ~output_model:Model.MAW topo
  in
  Alcotest.(check bool) "fig9b label" true (contains fig9 "Fig. 9b");
  Alcotest.(check bool) "fig9 MAW middles" true (contains fig9 "[MAW]")

(* --- scenarios --------------------------------------------------------------- *)

let test_scenario_shape () =
  Alcotest.(check int) "prelude size" 3 (List.length Scenarios.fig10_prelude);
  Alcotest.(check int) "topology ports" 4
    (Topology.num_ports Scenarios.fig10_topology);
  Alcotest.(check int) "probe fanout" 1 (Connection.fanout Scenarios.fig10_probe)

(* --- cost printers ------------------------------------------------------------ *)

let test_cost_pp () =
  let s =
    Format.asprintf "%a" Wdm_core.Cost.pp_summary
      (Wdm_core.Cost.summarize Model.MAW ~n:4 ~k:2)
  in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains s needle))
    [ "MAW"; "64 crosspoints"; "8 converters" ];
  let b =
    Cost.breakdown ~construction:Network.Msw_dominant ~output_model:Model.MSW
      (Topology.make_exn ~n:2 ~m:4 ~r:2 ~k:1)
  in
  let s = Format.asprintf "%a" Cost.pp_breakdown b in
  Alcotest.(check bool) "breakdown totals" true (contains s "crosspoints 48")

let () =
  Alcotest.run "wdm_misc"
    [
      ( "vocabulary",
        [
          Alcotest.test_case "wavelength" `Quick test_wavelength;
          Alcotest.test_case "labels" `Quick test_labels;
          Alcotest.test_case "scenario shape" `Quick test_scenario_shape;
        ] );
      ( "printers",
        [
          Alcotest.test_case "connection" `Quick test_connection_pp;
          Alcotest.test_case "assignment errors" `Quick test_assignment_pp_error;
          Alcotest.test_case "network spec describe" `Quick test_network_spec_describe;
          Alcotest.test_case "topology" `Quick test_topology_pp;
          Alcotest.test_case "conditions" `Quick test_conditions_pp;
          Alcotest.test_case "create_legacy compat" `Quick
            test_create_legacy_compat;
          Alcotest.test_case "network state" `Quick test_network_pp_state;
          Alcotest.test_case "churn stats" `Quick test_churn_pp_stats;
          Alcotest.test_case "recursive design" `Quick test_recursive_pp;
          Alcotest.test_case "cost" `Quick test_cost_pp;
        ] );
      ("diagrams", [ Alcotest.test_case "content" `Quick test_diagrams ]);
    ]
