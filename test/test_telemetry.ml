(* Tests for the telemetry subsystem: the JSON codec, histogram
   invariants, trace serialization round-trips, and — the load-bearing
   property — that the counters a sink accumulates over a seeded churn
   run exactly reconcile with the driver's own statistics, while the
   un-instrumented path replays the same run unchanged. *)

open Wdm_core
open Wdm_multistage
module Tel = Wdm_telemetry

let ep port wl = Endpoint.make ~port ~wl
let conn src dests = Connection.make_exn ~source:src ~destinations:dests

let check_ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Format.asprintf "%a" Network.pp_error e)

let churn_sut t =
  {
    Wdm_traffic.Churn.connect =
      (fun c ->
        match Network.connect t c with
        | Ok route -> Ok route.Network.id
        | Error e -> Error e);
    disconnect = (fun id -> ignore (Network.disconnect t id));
  }

(* A network sized below the Theorem-1 minimum, so churn produces a mix
   of admissions and refusals — both counter families get exercised. *)
let undersized_run ?telemetry ~seed ~steps () =
  let topo = Topology.make_exn ~n:3 ~m:4 ~r:3 ~k:2 in
  let net =
    Network.create
      ~config:{ Network.Config.default with telemetry }
      ~construction:Network.Msw_dominant
      ~output_model:Model.MSW topo
  in
  let stats =
    Wdm_traffic.Churn.run ?telemetry
      (Random.State.make [| seed |])
      ~spec:(Topology.spec topo) ~model:Model.MSW
      ~fanout:(Wdm_traffic.Fanout.Zipf { max = 9; s = 1.0 })
      ~steps ~teardown_bias:0.3 (churn_sut net)
  in
  (net, stats)

(* --- json ---------------------------------------------------------------- *)

let test_json_roundtrip () =
  let open Tel.Json in
  let v =
    Obj
      [
        ("s", String "a \"quoted\" \\ line\nwith\tescapes");
        ("i", Int (-42));
        ("f", Float 1.5);
        ("b", Bool true);
        ("n", Null);
        ("l", List [ Int 1; Int 2; Obj [ ("x", Float 0.25) ] ]);
      ]
  in
  match parse (to_string v) with
  | Error e -> Alcotest.fail e
  | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')

let test_json_non_finite () =
  let open Tel.Json in
  (* non-finite floats cannot be JSON number literals; they are encoded
     as marker strings so nothing is silently lost as null *)
  Alcotest.(check string) "nan" "\"nan\"" (to_string (Float Float.nan));
  Alcotest.(check string) "inf" "\"inf\"" (to_string (Float Float.infinity));
  Alcotest.(check string) "-inf" "\"-inf\""
    (to_string (Float Float.neg_infinity));
  (match parse (to_string (Float Float.nan)) with
  | Ok (String "nan") -> ()
  | _ -> Alcotest.fail "nan marker did not parse back as its string");
  let back s =
    match to_float_opt (String s) with
    | Some f -> f
    | None -> Alcotest.failf "to_float_opt rejected %S" s
  in
  Alcotest.(check bool) "nan back" true (Float.is_nan (back "nan"));
  Alcotest.(check (float 0.)) "inf back" Float.infinity (back "inf");
  Alcotest.(check (float 0.)) "-inf back" Float.neg_infinity (back "-inf")

(* Property: any value built from the constructors — full-byte-range
   strings, 62-bit int extremes, finite floats, nesting — survives
   to_string |> parse exactly. *)
let prop_json_roundtrip =
  let gen =
    QCheck.Gen.(
      let str =
        (* bytes 0-255, leaning on escapes and control characters *)
        string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 12)
      in
      let atom =
        oneof
          [
            return Tel.Json.Null;
            map (fun b -> Tel.Json.Bool b) bool;
            map (fun i -> Tel.Json.Int i)
              (oneof
                 [
                   small_signed_int;
                   return max_int;
                   return min_int;
                   return ((1 lsl 61) - 1);
                   return (-(1 lsl 61));
                 ]);
            map
              (fun f ->
                let f = if Float.is_finite f then f else 0. in
                Tel.Json.Float f)
              float;
            map (fun s -> Tel.Json.String s) str;
          ]
      in
      sized_size (int_bound 3) @@ fix (fun self depth ->
          if depth = 0 then atom
          else
            frequency
              [
                (3, atom);
                ( 1,
                  map (fun l -> Tel.Json.List l)
                    (list_size (int_bound 4) (self (depth - 1))) );
                ( 1,
                  map (fun kvs -> Tel.Json.Obj kvs)
                    (list_size (int_bound 4)
                       (pair str (self (depth - 1)))) );
              ]))
  in
  QCheck.Test.make ~name:"json roundtrip property" ~count:1000
    (QCheck.make ~print:Tel.Json.to_string gen)
    (fun v ->
      match Tel.Json.parse (Tel.Json.to_string v) with
      | Ok v' -> v = v'
      | Error _ -> false)

let test_json_rejects_garbage () =
  let bad s =
    Alcotest.(check bool)
      (Printf.sprintf "rejects %S" s)
      true
      (Result.is_error (Tel.Json.parse s))
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":1} trailing";
  bad "\"unterminated"

(* --- histograms ---------------------------------------------------------- *)

let test_histogram_monotone () =
  let h = Tel.Histogram.create "h" in
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 1000 do
    Tel.Histogram.observe h (Random.State.float rng 0.2)
  done;
  let s = Tel.Histogram.snapshot h in
  Alcotest.(check int) "count" 1000 s.Tel.Histogram.count;
  let c = s.Tel.Histogram.cumulative in
  Alcotest.(check int) "one entry per bound plus overflow"
    (Array.length s.Tel.Histogram.bounds + 1)
    (Array.length c);
  for i = 1 to Array.length c - 1 do
    Alcotest.(check bool) "cumulative non-decreasing" true (c.(i - 1) <= c.(i))
  done;
  Alcotest.(check int) "last bucket is the total" 1000 (c.(Array.length c - 1))

let test_histogram_quantiles () =
  let h = Tel.Histogram.create ~bounds:[| 1.; 2.; 4. |] "q" in
  List.iter (Tel.Histogram.observe h) [ 0.5; 0.5; 1.5; 3.0 ];
  let s = Tel.Histogram.snapshot h in
  Alcotest.(check (option (float 1e-9))) "median bucket" (Some 1.)
    (Tel.Histogram.quantile s 0.5);
  Alcotest.(check (option (float 1e-9))) "p99 bucket" (Some 4.)
    (Tel.Histogram.quantile s 0.99);
  Alcotest.(check (option (float 1e-9))) "mean" (Some 1.375) (Tel.Histogram.mean s)

(* --- trace --------------------------------------------------------------- *)

(* A deterministic step clock makes the emitted timestamps exact. *)
let step_clock () =
  let t = ref 0. in
  fun () ->
    t := !t +. 1.;
    !t

let traced_run () =
  let trace = Tel.Trace.create () in
  let sink = Tel.Sink.create ~trace ~clock:(step_clock ()) () in
  let topo = Topology.make_exn ~n:2 ~m:4 ~r:2 ~k:2 in
  let net =
    Network.create
      ~config:{ Network.Config.default with telemetry = Some sink }
      ~construction:Network.Msw_dominant
      ~output_model:Model.MSW topo
  in
  let r1 = check_ok (Network.connect net (conn (ep 1 1) [ ep 1 1; ep 3 1 ])) in
  let _r2 = check_ok (Network.connect net (conn (ep 2 1) [ ep 2 1 ])) in
  ignore (Network.disconnect net r1.Network.id);
  ignore (Network.connect net (conn (ep 2 1) [ ep 4 1 ]));
  (* source 2 wl 1 is still busy -> a Block event *)
  trace

let test_trace_jsonl_roundtrip () =
  let trace = traced_run () in
  let events = Tel.Trace.events trace in
  Alcotest.(check bool) "some events" true (List.length events >= 4);
  let lines =
    Tel.Trace.to_jsonl trace |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one line per event" (List.length events)
    (List.length lines);
  List.iter2
    (fun ev line ->
      match Tel.Trace.event_of_jsonl line with
      | Error e -> Alcotest.fail e
      | Ok ev' ->
        Alcotest.(check bool)
          (Printf.sprintf "event %s round-trips"
             (Tel.Trace.kind_to_string ev.Tel.Trace.kind))
          true (ev = ev'))
    events lines

let test_trace_monotone_and_kinds () =
  let trace = traced_run () in
  let events = Tel.Trace.events trace in
  let rec check_sorted = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "timestamps non-decreasing" true
        (a.Tel.Trace.ts <= b.Tel.Trace.ts);
      check_sorted rest
    | _ -> ()
  in
  check_sorted events;
  let kinds = List.map (fun e -> e.Tel.Trace.kind) events in
  Alcotest.(check bool) "has connect" true (List.mem Tel.Trace.Connect kinds);
  Alcotest.(check bool) "has disconnect" true
    (List.mem Tel.Trace.Disconnect kinds);
  Alcotest.(check bool) "has block" true (List.mem Tel.Trace.Block kinds)

let test_trace_chrome_parses () =
  let trace = traced_run () in
  match Tel.Json.parse (Tel.Trace.to_chrome trace) with
  | Error e -> Alcotest.fail e
  | Ok json ->
    let events =
      match Tel.Json.member "traceEvents" json with
      | Some j -> Option.get (Tel.Json.to_list j)
      | None -> Alcotest.fail "no traceEvents"
    in
    Alcotest.(check int) "one chrome event per trace event"
      (Tel.Trace.length trace) (List.length events);
    List.iter
      (fun ev ->
        let field name =
          match Tel.Json.member name ev with
          | Some (Tel.Json.String s) -> s
          | _ -> Alcotest.fail (name ^ " missing")
        in
        Alcotest.(check bool) "ph is X or i" true
          (List.mem (field "ph") [ "X"; "i" ]);
        Alcotest.(check string) "cat" "wdmnet" (field "cat"))
      events

(* --- counters reconcile with the driver ---------------------------------- *)

(* The acceptance criterion: over a seeded churn run, the per-cause
   block counters must exactly explain the blocking rate the driver
   reports — attempts = successes + sum of blocks by cause. *)
let test_counters_reconcile () =
  let sink = Tel.Sink.create () in
  let _net, stats = undersized_run ~telemetry:sink ~seed:11 ~steps:3000 () in
  let snap = Tel.Sink.snapshot sink in
  let c name =
    match Tel.Metrics.find_counter snap name with
    | Some v -> v
    | None -> Alcotest.fail ("missing counter " ^ name)
  in
  let blocked_by_cause =
    Tel.Metrics.sum_counters snap ~prefix:"wdmnet_connect_blocked_total"
  in
  Alcotest.(check bool) "run produced blocks" true (stats.Wdm_traffic.Churn.blocked > 0);
  Alcotest.(check int) "attempts" stats.Wdm_traffic.Churn.attempts
    (c "wdmnet_connect_attempts_total");
  Alcotest.(check int) "successes" stats.Wdm_traffic.Churn.accepted
    (c "wdmnet_connect_success_total");
  Alcotest.(check int) "blocks by cause sum to the refusals"
    stats.Wdm_traffic.Churn.blocked blocked_by_cause;
  Alcotest.(check int) "attempts = successes + blocks"
    (c "wdmnet_connect_attempts_total")
    (c "wdmnet_connect_success_total" + blocked_by_cause);
  (* the driver's own tallies are counters too, and they agree *)
  Alcotest.(check int) "churn attempts" stats.Wdm_traffic.Churn.attempts
    (c "churn_attempts_total");
  Alcotest.(check int) "churn accepted" stats.Wdm_traffic.Churn.accepted
    (c "churn_accepted_total");
  Alcotest.(check int) "churn blocked" stats.Wdm_traffic.Churn.blocked
    (c "churn_blocked_total");
  Alcotest.(check int) "churn teardowns" stats.Wdm_traffic.Churn.torn_down
    (c "churn_teardowns_total");
  (* the connect histogram saw every attempt *)
  (match Tel.Metrics.find_histogram snap "wdmnet_connect_latency_seconds" with
  | None -> Alcotest.fail "missing connect histogram"
  | Some h ->
    Alcotest.(check int) "histogram count = attempts"
      stats.Wdm_traffic.Churn.attempts h.Tel.Histogram.count;
    let cum = h.Tel.Histogram.cumulative in
    for i = 1 to Array.length cum - 1 do
      Alcotest.(check bool) "histogram monotone" true (cum.(i - 1) <= cum.(i))
    done);
  (* a reused sink accumulates; the next run's stats stay per-run *)
  let _net, stats2 = undersized_run ~telemetry:sink ~seed:12 ~steps:1000 () in
  let snap2 = Tel.Sink.snapshot sink in
  let c2 name = Option.get (Tel.Metrics.find_counter snap2 name) in
  Alcotest.(check int) "counters accumulate across runs"
    (stats.Wdm_traffic.Churn.attempts + stats2.Wdm_traffic.Churn.attempts)
    (c2 "wdmnet_connect_attempts_total")

let test_disabled_path_identical () =
  let _net, plain = undersized_run ~seed:11 ~steps:3000 () in
  let sink = Tel.Sink.create ~trace:(Tel.Trace.create ()) () in
  let _net, instrumented = undersized_run ~telemetry:sink ~seed:11 ~steps:3000 () in
  Alcotest.(check bool) "instrumentation does not perturb the run" true
    (plain = instrumented)

(* --- gauges and utilization ---------------------------------------------- *)

let test_utilization_gauges () =
  let sink = Tel.Sink.create () in
  let topo = Topology.make_exn ~n:4 ~m:13 ~r:4 ~k:2 in
  let net =
    Network.create
      ~config:{ Network.Config.default with telemetry = Some sink }
      ~construction:Network.Msw_dominant
      ~output_model:Model.MSW topo
  in
  (* fanout 3: one busy input endpoint, three busy output endpoints,
     out of 16 ports x 2 wavelengths = 32 endpoints per side *)
  let _r =
    check_ok (Network.connect net (conn (ep 1 1) [ ep 1 1; ep 5 1; ep 9 1 ]))
  in
  Alcotest.(check (float 1e-9)) "output utilization" (3. /. 32.)
    (Network.utilization net);
  Alcotest.(check (float 1e-9)) "input utilization" (1. /. 32.)
    (Network.input_utilization net);
  let snap = Tel.Sink.snapshot sink in
  let g name =
    match Tel.Metrics.find_gauge snap name with
    | Some v -> v
    | None -> Alcotest.fail ("missing gauge " ^ name)
  in
  Alcotest.(check (float 1e-9)) "utilization gauge" (3. /. 32.)
    (g "wdmnet_utilization");
  Alcotest.(check (float 1e-9)) "input utilization gauge" (1. /. 32.)
    (g "wdmnet_input_utilization");
  Alcotest.(check (float 1e-9)) "active routes gauge" 1. (g "wdmnet_active_routes")

(* --- prometheus exposition ----------------------------------------------- *)

let test_prometheus_exposition () =
  let sink = Tel.Sink.create () in
  let _net, stats = undersized_run ~telemetry:sink ~seed:3 ~steps:500 () in
  let text = Tel.Metrics.to_prometheus (Tel.Sink.snapshot sink) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let has s =
    Alcotest.(check bool)
      (Printf.sprintf "exposition mentions %s" s)
      true (contains text s)
  in
  has
    (Printf.sprintf "wdmnet_connect_attempts_total %d"
       stats.Wdm_traffic.Churn.attempts);
  has "# TYPE wdmnet_connect_attempts_total counter";
  has "# TYPE wdmnet_connect_latency_seconds histogram";
  has "wdmnet_connect_latency_seconds_bucket{le=\"+Inf\"}";
  has "wdmnet_connect_latency_seconds_count";
  has "wdmnet_connect_blocked_total{cause=\"blocked\"}"

(* Exposition-format conformance on a synthetic registry: all samples
   of a family contiguous with TYPE/HELP exactly once even when
   members register interleaved with other metrics (and only a later
   member carries the help text), label values escaped, labeled
   histograms exposed as [fam_bucket{labels,le=...}], and the default
   latency ladder resolving sub-millisecond observations. *)
let test_prometheus_conformance () =
  let m = Tel.Metrics.create () in
  let a1 = Tel.Metrics.counter m "fam_a_total{shard=\"one\"}" in
  Tel.Metrics.set (Tel.Metrics.gauge m ~help:"a lone gauge" "fam_b") 2.5;
  let a2 =
    Tel.Metrics.counter m ~help:"family a help"
      "fam_a_total{shard=\"two\",path=\"C:\\temp\"}"
  in
  Tel.Metrics.inc a1;
  Tel.Metrics.add a2 2;
  Tel.Metrics.set (Tel.Metrics.gauge m "fam_c{note=\"a\nb\"}") 1.;
  let hx =
    Tel.Metrics.histogram m ~help:"per-op latency" ~bounds:[| 0.1; 1. |]
      "fam_h_seconds{op=\"x\"}"
  in
  let hy =
    Tel.Metrics.histogram m ~bounds:[| 0.1; 1. |] "fam_h_seconds{op=\"y\"}"
  in
  List.iter (Tel.Histogram.observe hx) [ 0.05; 0.5; 5. ];
  Tel.Histogram.observe hy 0.5;
  let hd = Tel.Metrics.histogram m "fam_d_seconds" in
  Tel.Histogram.observe hd 3e-4;
  let text = Tel.Metrics.to_prometheus (Tel.Metrics.snapshot m) in
  let occurrences needle =
    let nh = String.length text and nn = String.length needle in
    let rec go i acc =
      if i + nn > nh then acc
      else if String.sub text i nn = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  let once s =
    Alcotest.(check int) (Printf.sprintf "exactly one %S" s) 1 (occurrences s)
  in
  let has s =
    Alcotest.(check bool) (Printf.sprintf "contains %S" s) true
      (occurrences s >= 1)
  in
  once "# TYPE fam_a_total counter";
  once "# HELP fam_a_total family a help";
  once "# TYPE fam_h_seconds histogram";
  once "# HELP fam_h_seconds per-op latency";
  (* contiguous family block despite fam_b registering in between *)
  has "fam_a_total{shard=\"one\"} 1\nfam_a_total{shard=\"two\",path=\"C:\\\\temp\"} 2\n";
  has "# HELP fam_b a lone gauge";
  has "fam_b 2.5";
  has "fam_c{note=\"a\\nb\"} 1";
  has "fam_h_seconds_bucket{op=\"x\",le=\"0.1\"} 1";
  has "fam_h_seconds_bucket{op=\"x\",le=\"+Inf\"} 3";
  has "fam_h_seconds_sum{op=\"x\"}";
  has "fam_h_seconds_count{op=\"x\"} 3";
  has "fam_h_seconds_bucket{op=\"y\",le=\"1\"} 1";
  has "fam_h_seconds_count{op=\"y\"} 1";
  (* the two labeled members share one family block: the y samples
     follow the x samples directly, no comment lines in between *)
  has "fam_h_seconds_count{op=\"x\"} 3\nfam_h_seconds_bucket{op=\"y\",le=\"0.1\"} 0";
  (* sub-millisecond ladder: a 300 us observation lands between real buckets *)
  has "fam_d_seconds_bucket{le=\"0.00025\"} 0";
  has "fam_d_seconds_bucket{le=\"0.0005\"} 1";
  has "fam_d_seconds_bucket{le=\"5e-08\"} 0"

let () =
  Alcotest.run "wdm_telemetry"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "non-finite floats" `Quick test_json_non_finite;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "cumulative monotone" `Quick test_histogram_monotone;
          Alcotest.test_case "quantiles and mean" `Quick test_histogram_quantiles;
        ] );
      ( "trace",
        [
          Alcotest.test_case "jsonl roundtrip" `Quick test_trace_jsonl_roundtrip;
          Alcotest.test_case "monotone, kinds present" `Quick
            test_trace_monotone_and_kinds;
          Alcotest.test_case "chrome trace parses" `Quick test_trace_chrome_parses;
        ] );
      ( "reconciliation",
        [
          Alcotest.test_case "counters explain the blocking rate" `Slow
            test_counters_reconcile;
          Alcotest.test_case "telemetry:None replays identically" `Slow
            test_disabled_path_identical;
        ] );
      ( "gauges",
        [ Alcotest.test_case "utilization both sides" `Quick test_utilization_gauges ] );
      ( "prometheus",
        [
          Alcotest.test_case "text exposition" `Quick
            test_prometheus_exposition;
          Alcotest.test_case "exposition conformance" `Quick
            test_prometheus_conformance;
        ] );
    ]
