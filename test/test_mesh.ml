(* Tests for the mesh RWA subsystem: the topology zoo, Yen's k-shortest
   paths against brute-force enumeration, the first-fit/graph-coloring
   equivalence on unicast traffic, the sparse-splitting invariant on
   multicast structures, snapshot codec round-trips, campaign
   reproducibility, and the mesh served behind the socket server with
   WAL recovery. *)

open Wdm_mesh
module Core = Wdm_core
module Backend = Wdm_persist.Backend
module Store = Wdm_persist.Store
module Resp = Wdm_persist.Resp
module Op = Wdm_persist.Op
module Srv = Wdm_server

let conn src dests =
  Core.Connection.make_exn
    ~source:(Core.Endpoint.make ~port:src ~wl:1)
    ~destinations:(List.map (fun p -> Core.Endpoint.make ~port:p ~wl:1) dests)

let mk_mesh ?(topo = "nsf14") ?(k = 4) ?(strategy = Assign.First_fit)
    ?(mode = Light_tree.Hierarchy) ?(splitters = Mesh_network.Split_all) () =
  let config = { Mesh_network.Config.k; strategy; mode; splitters; k_paths = 3 } in
  match Mesh_network.create ~config topo with
  | Ok m -> m
  | Error e -> Alcotest.fail e

(* --- topology zoo -------------------------------------------------------- *)

let test_zoo () =
  let g = Zoo.nsf14 () in
  Alcotest.(check int) "nsf nodes" 14 (Graph.n g);
  Alcotest.(check int) "nsf links" 21 (Graph.m g);
  Alcotest.(check int) "clara nodes" 13 (Graph.n (Zoo.clara ()));
  Alcotest.(check int) "janet nodes" 7 (Graph.n (Zoo.janet ()));
  (match Zoo.by_name "ring8" with
  | Ok g ->
    Alcotest.(check int) "ring nodes" 8 (Graph.n g);
    Alcotest.(check int) "ring links" 8 (Graph.m g)
  | Error e -> Alcotest.fail e);
  (match Zoo.by_name "torus3x4" with
  | Ok g ->
    Alcotest.(check int) "torus nodes" 12 (Graph.n g);
    Alcotest.(check int) "torus links" 24 (Graph.m g)
  | Error e -> Alcotest.fail e);
  match Zoo.by_name "atlantis" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown topology accepted"

(* --- Yen vs brute force --------------------------------------------------- *)

(* Every simple path src->dst by exhaustive DFS, sorted by the same
   (cost, lexicographic node sequence) order the Yen implementation
   promises. *)
let all_simple_paths g ~src ~dst =
  let acc = ref [] in
  let rec go node visited rpath cost =
    if node = dst then acc := (cost, List.rev rpath) :: !acc
    else
      List.iter
        (fun (nb, eid) ->
          if not (List.mem nb visited) then
            go nb (nb :: visited) (nb :: rpath)
              (cost +. (Graph.edge g eid).Graph.w))
        (Graph.adj g node)
  in
  go src [ src ] [ src ] 0.;
  List.sort compare !acc

let path_testable = Alcotest.(list (pair (float 1e-9) (list int)))

let test_yen_vs_brute_force () =
  let g = Zoo.janet () in
  let n = Graph.n g in
  for src = 1 to n do
    for dst = 1 to n do
      if src <> dst then begin
        let brute = all_simple_paths g ~src ~dst in
        let k = min 12 (List.length brute) in
        let expected = List.filteri (fun i _ -> i < k) brute in
        let got = Shortest.k_shortest g ~src ~dst ~k in
        Alcotest.check path_testable
          (Printf.sprintf "paths %d->%d" src dst)
          expected got
      end
    done
  done

let test_yen_respects_edge_filter () =
  let g = Zoo.janet () in
  (* ban the direct 1-2 edge if it exists; no returned path may use a
     banned edge *)
  let banned = Graph.edge_between g 1 2 in
  let use_edge id = Some id <> banned in
  let paths = Shortest.k_shortest ~use_edge g ~src:1 ~dst:2 ~k:5 in
  Alcotest.(check bool) "still connected" true (paths <> []);
  List.iter
    (fun (_, nodes) ->
      let rec arcs = function
        | a :: (b :: _ as rest) ->
          (match Graph.edge_between g a b with
          | Some id ->
            Alcotest.(check bool) "banned edge unused" true (use_edge id)
          | None -> Alcotest.fail "non-adjacent hop");
          arcs rest
        | _ -> ()
      in
      arcs nodes)
    paths

(* --- first-fit vs graph-coloring on unicast traffic ----------------------- *)

(* For path requests the coloring conflict set is exactly the union of
   occupancy on the path's edges, so coloring must pick the same
   wavelength first-fit does.  Drive both engines with an identical
   connect/disconnect trace and demand identical routes. *)
let test_first_fit_coloring_equivalent () =
  let a = mk_mesh ~strategy:Assign.First_fit () in
  let b = mk_mesh ~strategy:Assign.Coloring () in
  let rng = Random.State.make [| 42 |] in
  let active = ref [] in
  for step = 1 to 600 do
    if Random.State.int rng 100 < 35 && !active <> [] then begin
      let i = Random.State.int rng (List.length !active) in
      let id = List.nth !active i in
      active := List.filter (fun x -> x <> id) !active;
      match (Mesh_network.disconnect a id, Mesh_network.disconnect b id) with
      | Ok ra, Ok rb ->
        Alcotest.(check int) "released same wl" ra.Mesh_network.wl
          rb.Mesh_network.wl
      | _ -> Alcotest.fail "disconnect diverged"
    end
    else begin
      let src = 1 + Random.State.int rng 14 in
      let dst = 1 + Random.State.int rng 14 in
      let c = conn src [ dst ] in
      match (Mesh_network.connect a c, Mesh_network.connect b c) with
      | Ok ra, Ok rb ->
        Alcotest.(check int)
          (Printf.sprintf "step %d: same wavelength" step)
          ra.Mesh_network.wl rb.Mesh_network.wl;
        Alcotest.(check bool)
          (Printf.sprintf "step %d: same arcs" step)
          true
          (ra.Mesh_network.arcs = rb.Mesh_network.arcs);
        Alcotest.(check int) "same id" ra.Mesh_network.id rb.Mesh_network.id;
        active := ra.Mesh_network.id :: !active
      | Error _, Error _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "step %d: admission diverged" step)
    end
  done;
  Alcotest.(check int) "same active count" (Mesh_network.active_count a)
    (Mesh_network.active_count b)

(* --- sparse-splitting invariant ------------------------------------------- *)

(* A multicast-incapable node is drop-and-continue: each signal coming
   in can leave on at most one link, so its out-degree never exceeds
   its in-degree (the source's transmitter grants it one extra).  And
   in both modes an edge carries the structure at most once. *)
let check_structure ~mc ~src ~mode (route : Mesh_network.route) =
  let seen = Hashtbl.create 16 in
  let indeg = Hashtbl.create 16 and outdeg = Hashtbl.create 16 in
  let bump tbl v = Hashtbl.replace tbl v (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v)) in
  List.iter
    (fun (a, b, eid) ->
      if Hashtbl.mem seen eid then failwith "edge used twice";
      Hashtbl.add seen eid ();
      bump outdeg a;
      bump indeg b)
    route.Mesh_network.arcs;
  let deg tbl v = Option.value ~default:0 (Hashtbl.find_opt tbl v) in
  Hashtbl.iter
    (fun v _ ->
      if not (List.mem v mc) then begin
        let allowance = deg indeg v + if v = src then 1 else 0 in
        if deg outdeg v > allowance then
          failwith (Printf.sprintf "MI node %d branches" v)
      end;
      if mode = Light_tree.Tree && deg indeg v > 1 then
        failwith (Printf.sprintf "tree revisits node %d" v))
    outdeg;
  Hashtbl.iter
    (fun v _ ->
      if mode = Light_tree.Tree && deg indeg v > 1 then
        failwith (Printf.sprintf "tree revisits node %d" v))
    indeg

let prop_no_branching_at_mi_nodes =
  QCheck.Test.make ~count:150 ~name:"no branching at splitting-incapable nodes"
    QCheck.(triple small_nat (int_range 1 3) bool)
    (fun (seed, fan, tree) ->
      let rng = Random.State.make [| seed; 77 |] in
      let mode = if tree then Light_tree.Tree else Light_tree.Hierarchy in
      (* a random minority of nodes can split *)
      let mc_list =
        List.filter (fun _ -> Random.State.int rng 4 = 0) (List.init 14 succ)
      in
      let splitters = Mesh_network.Split_nodes mc_list in
      let m = mk_mesh ~k:3 ~mode ~splitters () in
      let mc = Mesh_network.mc_nodes m in
      let ok = ref true in
      for _ = 1 to 40 do
        let src = 1 + Random.State.int rng 14 in
        let dests =
          List.sort_uniq compare
            (List.init (1 + fan) (fun _ -> 1 + Random.State.int rng 14))
        in
        match Mesh_network.connect m (conn src dests) with
        | Ok route -> (
          match check_structure ~mc ~src ~mode route with
          | () -> ()
          | exception Failure msg ->
            QCheck.Test.fail_report msg)
        | Error (Mesh_network.Blocked _) -> ()
        | Error _ -> ok := false
      done;
      !ok)

(* --- snapshot codec round trip -------------------------------------------- *)

let drive m rng steps =
  let active = ref [] in
  for _ = 1 to steps do
    if Random.State.int rng 100 < 30 && !active <> [] then begin
      let i = Random.State.int rng (List.length !active) in
      let id = List.nth !active i in
      active := List.filter (fun x -> x <> id) !active;
      ignore (Mesh_network.disconnect m id)
    end
    else begin
      let src = 1 + Random.State.int rng 14 in
      let fan = 1 + Random.State.int rng 3 in
      let dests = List.init fan (fun _ -> 1 + Random.State.int rng 14) in
      match Mesh_network.connect m (conn src (List.sort_uniq compare dests)) with
      | Ok r -> active := r.Mesh_network.id :: !active
      | Error _ -> ()
    end
  done

let test_mesh_codec_roundtrip () =
  let m =
    mk_mesh ~k:6 ~strategy:Assign.Most_used
      ~splitters:(Mesh_network.Split_degree_ge 3) ()
  in
  drive m (Random.State.make [| 7 |]) 300;
  let encoded = Backend.encode_state (Backend.Mesh m) in
  Alcotest.(check bool) "tagged as mesh" true (Backend.is_mesh_state encoded);
  match Backend.restore encoded with
  | Error e -> Alcotest.fail e
  | Ok (Backend.Net _) -> Alcotest.fail "restored as multistage"
  | Ok (Backend.Mesh m' as b') ->
    Alcotest.(check int) "same digest"
      (Backend.digest (Backend.Mesh m))
      (Backend.digest b');
    Alcotest.(check int) "same active routes" (Mesh_network.active_count m)
      (Mesh_network.active_count m');
    (* behaviorally identical afterwards: same connect outcome *)
    let c = conn 1 [ 5; 9; 12 ] in
    (match (Mesh_network.connect m c, Mesh_network.connect m' c) with
    | Ok a, Ok b ->
      Alcotest.(check int) "same wl" a.Mesh_network.wl b.Mesh_network.wl;
      Alcotest.(check bool) "same arcs" true
        (a.Mesh_network.arcs = b.Mesh_network.arcs)
    | Error _, Error _ -> ()
    | _ -> Alcotest.fail "restored mesh diverged")

let test_multistage_state_not_mesh () =
  (* dispatch safety: a multistage snapshot must not be mistaken for a
     mesh one and vice versa *)
  let topo = Wdm_multistage.Topology.make_exn ~n:4 ~m:7 ~r:4 ~k:2 in
  let net =
    Wdm_multistage.Network.create
      ~construction:Wdm_multistage.Network.Msw_dominant
      ~output_model:Core.Model.MSW topo
  in
  let s = Backend.encode_state (Backend.Net net) in
  Alcotest.(check bool) "multistage not mesh-tagged" false
    (Backend.is_mesh_state s);
  match Backend.restore s with
  | Ok (Backend.Net _) -> ()
  | Ok (Backend.Mesh _) -> Alcotest.fail "multistage restored as mesh"
  | Error e -> Alcotest.fail e

(* --- campaign reproducibility --------------------------------------------- *)

let test_campaign_reproducible () =
  let spec =
    {
      Campaign.quick with
      Campaign.topos = [ "janet"; "ring6" ];
      loads = [ 6.; 14. ];
      arrivals = 250;
    }
  in
  match (Campaign.run spec, Campaign.run spec) with
  | Ok a, Ok b ->
    Alcotest.(check int) "cell count" (2 * 2 * 2) (List.length a);
    Alcotest.(check bool) "identical tables" true (a = b);
    List.iter
      (fun (c : Campaign.cell) ->
        let p = c.Campaign.point in
        Alcotest.(check int) "arrivals conserved" p.Wdm_traffic.Erlang.arrivals
          (p.Wdm_traffic.Erlang.accepted + p.Wdm_traffic.Erlang.blocked))
      a
  | Error e, _ | _, Error e -> Alcotest.fail e

(* --- mesh behind the socket server, with WAL recovery --------------------- *)

let test_mesh_served_recovers () =
  let dir = Filename.temp_file "wdm_mesh_srv" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let wal = Filename.concat dir "mesh.wal" in
  let sock = Filename.concat dir "srv.sock" in
  let backend = Backend.Mesh (mk_mesh ~topo:"janet" ~k:4 ()) in
  let store = Store.start_backend ~wal backend in
  let srv = Srv.Server.start_backend ~store ~backend (Srv.Server.Unix_socket sock) in
  let final_digest =
    Fun.protect
      ~finally:(fun () -> Srv.Server.stop srv)
      (fun () ->
        match Srv.Client.connect (Srv.Server.address srv) with
        | Error e -> Alcotest.fail (Srv.Client.error_to_string e)
        | Ok c ->
          Fun.protect
            ~finally:(fun () -> Srv.Client.close c)
            (fun () ->
              let admit op =
                match Srv.Client.request c (Resp.Admit op) with
                | Ok r -> r
                | Error e -> Alcotest.fail (Srv.Client.error_to_string e)
              in
              (match admit (Op.Connect (conn 1 [ 3; 5 ])) with
              | Resp.Admitted _ -> ()
              | _ -> Alcotest.fail "connect refused");
              (match admit (Op.Connect (conn 2 [ 6 ])) with
              | Resp.Admitted _ -> ()
              | _ -> Alcotest.fail "connect refused");
              (match admit (Op.Disconnect 1) with
              | Resp.Released _ -> ()
              | _ -> Alcotest.fail "disconnect failed");
              (* fault ops are refused on a mesh, not crashed on *)
              (match admit (Op.Inject_fault (Wdm_faults.Fault.Middle 1)) with
              | Resp.Server_error _ -> ()
              | _ -> Alcotest.fail "fault op not refused");
              match Srv.Client.digest c with
              | Ok d -> d
              | Error e -> Alcotest.fail (Srv.Client.error_to_string e)))
  in
  Store.checkpoint_backend store (Srv.Server.backend srv);
  Store.close store;
  (match Store.recover_backend ~wal () with
  | Error e ->
    Alcotest.failf "recovery failed: %a" Store.pp_recovery_error e
  | Ok r ->
    Alcotest.(check string) "mesh came back" "mesh" (Backend.kind r.Store.backend);
    Alcotest.(check int) "digest reproduced" final_digest
      (Backend.digest r.Store.backend);
    match r.Store.backend with
    | Backend.Mesh m ->
      Alcotest.(check int) "one route active" 1 (Mesh_network.active_count m)
    | Backend.Net _ -> Alcotest.fail "wrong backend kind");
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

let () =
  Alcotest.run "wdm_mesh"
    [
      ( "topology",
        [
          Alcotest.test_case "zoo shapes" `Quick test_zoo;
        ] );
      ( "routing",
        [
          Alcotest.test_case "yen vs brute force" `Quick test_yen_vs_brute_force;
          Alcotest.test_case "yen edge filter" `Quick
            test_yen_respects_edge_filter;
        ] );
      ( "assignment",
        [
          Alcotest.test_case "first-fit = coloring on paths" `Quick
            test_first_fit_coloring_equivalent;
        ] );
      ( "splitting",
        [ QCheck_alcotest.to_alcotest prop_no_branching_at_mi_nodes ] );
      ( "persistence",
        [
          Alcotest.test_case "mesh codec roundtrip" `Quick
            test_mesh_codec_roundtrip;
          Alcotest.test_case "dispatch tags disjoint" `Quick
            test_multistage_state_not_mesh;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "seed-reproducible table" `Quick
            test_campaign_reproducible;
        ] );
      ( "server",
        [
          Alcotest.test_case "served mesh recovers" `Quick
            test_mesh_served_recovers;
        ] );
    ]
