(* The bitset link-state implementation is an optimization, not a
   behaviour change: for any seeded workload it must pick byte-identical
   routes to the retained bool-array reference implementation.  These
   tests drive both implementations in lockstep through churn with
   faults in force, and pin the supporting data structures (Bitops,
   Event_heap, Free_pool) against naive references.  Also here: the
   fault-counter reconciliation and run_timed gauge-reset regressions. *)

open Wdm_core
open Wdm_multistage
module Tel = Wdm_telemetry
module Fault = Wdm_faults.Fault
module Schedule = Wdm_faults.Schedule
open Wdm_traffic

let rng seed = Random.State.make [| seed |]

(* --- Bitops vs naive references ----------------------------------------- *)

let naive_popcount x =
  let c = ref 0 in
  for i = 0 to 61 do
    if x land (1 lsl i) <> 0 then incr c
  done;
  !c

let naive_ctz x =
  let rec go i = if x land (1 lsl i) <> 0 then i else go (i + 1) in
  if x = 0 then 62 else go 0

let test_bitops () =
  let r = rng 42 in
  List.iter
    (fun x ->
      Alcotest.(check int)
        (Printf.sprintf "popcount %d" x)
        (naive_popcount x) (Wdm_core.Bitops.popcount x);
      Alcotest.(check int)
        (Printf.sprintf "ctz %d" x)
        (naive_ctz x) (Wdm_core.Bitops.ctz x))
    (0 :: 1 :: 2 :: 3 :: max_int :: (1 lsl 61)
    :: List.init 200 (fun _ -> Random.State.int r ((1 lsl 30) - 1)));
  (* lowest_clear reproduces the linear first-free scan *)
  for width = 1 to 8 do
    for x = 0 to (1 lsl width) - 1 do
      let naive =
        let rec go i =
          if i >= width then None
          else if x land (1 lsl i) = 0 then Some i
          else go (i + 1)
        in
        go 0
      in
      Alcotest.(check (option int))
        (Printf.sprintf "lowest_clear w=%d x=%d" width x)
        naive
        (Wdm_core.Bitops.lowest_clear ~width x)
    done
  done;
  (* iter_set visits set bits in ascending order *)
  let visited = ref [] in
  Wdm_core.Bitops.iter_set ~width:10 (fun i -> visited := i :: !visited) 0b1010010110;
  Alcotest.(check (list int)) "iter_set" [ 1; 2; 4; 7; 9 ] (List.rev !visited)

(* --- Event_heap vs sorted-list semantics -------------------------------- *)

let test_event_heap () =
  let module H = Wdm_traffic.Event_heap in
  let h = H.create () in
  Alcotest.(check bool) "empty peek" true (H.peek h = None);
  let r = rng 7 in
  (* reference: stable sorted list with strictly-less-inserts-before *)
  let reference = ref [] in
  let insert time v =
    let rec go = function
      | (t', v') :: rest when t' <= time -> (t', v') :: go rest
      | rest -> (time, v) :: rest
    in
    reference := go !reference
  in
  for i = 0 to 499 do
    (* coarse times force plenty of ties *)
    let time = float_of_int (Random.State.int r 20) in
    H.push h ~time i;
    insert time i
  done;
  Alcotest.(check int) "size" 500 (H.size h);
  List.iter
    (fun (t_ref, v_ref) ->
      match H.pop h with
      | None -> Alcotest.fail "heap drained early"
      | Some (t, v) ->
        Alcotest.(check (float 0.)) "time order" t_ref t;
        Alcotest.(check int) "FIFO on ties" v_ref v)
    !reference;
  Alcotest.(check bool) "drained" true (H.pop h = None)

(* --- Free_pool vs List.filter ------------------------------------------- *)

let test_free_pool () =
  let sp = Network_spec.make_exn ~n:5 ~k:3 in
  let universe = Network_spec.inputs sp in
  let pool = Free_pool.create universe in
  let busy = Hashtbl.create 16 in
  let reference () =
    List.filter (fun e -> not (Hashtbl.mem busy e)) universe
  in
  let r = rng 13 in
  for _ = 1 to 2000 do
    let e = List.nth universe (Random.State.int r (List.length universe)) in
    if Random.State.bool r then begin
      Free_pool.remove pool e;
      Hashtbl.replace busy e ()
    end
    else begin
      Free_pool.add pool e;
      Hashtbl.remove busy e
    end;
    Alcotest.(check int) "count" (List.length (reference ()))
      (Free_pool.free_count pool)
  done;
  Alcotest.(check bool) "contents and order" true
    (reference () = Free_pool.to_list pool);
  Alcotest.check_raises "outside universe"
    (Invalid_argument "Free_pool: endpoint outside the universe")
    (fun () -> Free_pool.remove pool (Endpoint.make ~port:99 ~wl:1))

(* --- lockstep equivalence: Bitset vs Reference -------------------------- *)

(* A faulty_sut that applies every operation to both networks and fails
   the test on any observable divergence. *)
let lockstep_sut ta tb =
  let check_routes label (ra : Network.route) (rb : Network.route) =
    if ra <> rb then
      Alcotest.failf "%s diverged:@.bitset    %a@.reference %a" label
        Network.pp_route ra Network.pp_route rb
  in
  let connect_both via c =
    match (via ta c, via tb c) with
    | Ok (ra : Network.route), Ok rb ->
      check_routes "route" ra rb;
      Ok ra.Network.id
    | Error ea, Error eb ->
      let s e = Format.asprintf "%a" Network.pp_error e in
      Alcotest.(check string) "same error" (s ea) (s eb);
      Error ea
    | Ok ra, Error eb ->
      Alcotest.failf "bitset admitted %a, reference blocked with %a"
        Network.pp_route ra Network.pp_error eb
    | Error ea, Ok rb ->
      Alcotest.failf "reference admitted %a, bitset blocked with %a"
        Network.pp_route rb Network.pp_error ea
  in
  {
    Churn.base =
      {
        Churn.connect = connect_both Network.connect;
        disconnect =
          (fun id ->
            ignore (Network.disconnect ta id);
            ignore (Network.disconnect tb id));
      };
    inject =
      (fun f ->
        let va = Network.inject_fault ta f and vb = Network.inject_fault tb f in
        Alcotest.(check int)
          (Format.asprintf "victims of %a" Fault.pp f)
          (List.length va) (List.length vb);
        if va <> vb then
          Alcotest.failf "victim sets of %s diverged" (Fault.to_string f);
        va);
    clear =
      (fun f ->
        Network.clear_fault ta f;
        Network.clear_fault tb f);
    reconnect =
      (fun c ->
        match (Network.connect_rearrangeable ta c, Network.connect_rearrangeable tb c) with
        | Ok (ra, ma), Ok (rb, mb) ->
          check_routes "rearranged route" ra rb;
          Alcotest.(check int) "moves" ma mb;
          Ok ra.Network.id
        | Error ea, Error _ -> Error ea
        | _ -> Alcotest.fail "rearrangement admit/deny diverged")
  }

let run_lockstep ~seed ~construction ~output_model ~strategy ~n ~m ~r ~k =
  let topo = Topology.make_exn ~n ~m ~r ~k in
  let ta =
    Network.create
      ~config:
        { Network.Config.default with strategy;
          link_impl = Some Network.Bitset }
      ~construction ~output_model topo
  and tb =
    Network.create
      ~config:
        { Network.Config.default with strategy;
          link_impl = Some Network.Reference }
      ~construction ~output_model topo
  in
  Alcotest.(check bool) "impls differ" true
    (Network.link_impl ta <> Network.link_impl tb);
  let schedule =
    Schedule.generate ~rng:(rng (seed + 1000))
      ~universe:(Fault.universe ~m ~r ~k)
      ~mtbf:120. ~mttr:60. ~steps:400
    |> List.map (fun { Schedule.step; action } ->
           match action with
           | Schedule.Inject f -> (step, `Inject f)
           | Schedule.Clear f -> (step, `Clear f))
  in
  let s =
    Churn.run_with_faults (rng seed)
      ~spec:(Topology.spec topo) ~model:output_model
      ~fanout:(Fanout.Uniform (1, r))
      ~steps:400 ~teardown_bias:0.4 ~schedule (lockstep_sut ta tb)
  in
  (* the workload must actually exercise the interesting paths *)
  Alcotest.(check bool) "some accepts" true (s.Churn.churn.Churn.accepted > 0);
  (* and the final states must agree wholesale *)
  let final t = Format.asprintf "%a" Network.pp_state t in
  Alcotest.(check string) "final state" (final tb) (final ta);
  Alcotest.(check bool) "final routes" true
    (Network.active_routes ta = Network.active_routes tb);
  s

let test_lockstep_msw () =
  let exercised_faults = ref false in
  for seed = 1 to 6 do
    let s =
      run_lockstep ~seed ~construction:Network.Msw_dominant
        ~output_model:Model.MSW ~strategy:Network.Min_intersection ~n:3 ~m:6
        ~r:3 ~k:2
    in
    if s.Churn.injected > 0 then exercised_faults := true
  done;
  Alcotest.(check bool) "faults were in force" true !exercised_faults

let test_lockstep_maw () =
  let exercised_faults = ref false in
  for seed = 1 to 6 do
    let s =
      run_lockstep ~seed ~construction:Network.Maw_dominant
        ~output_model:Model.MAW ~strategy:Network.First_fit ~n:3 ~m:5 ~r:3 ~k:2
    in
    if s.Churn.injected > 0 then exercised_faults := true
  done;
  Alcotest.(check bool) "faults were in force" true !exercised_faults

(* Static spot-check on a wider-than-62-wavelength fabric: the packed
   representation is refused and the wide fallback engages. *)
let test_wide_k_fallback () =
  let topo = Topology.make_exn ~n:2 ~m:4 ~r:2 ~k:63 in
  let t =
    Network.create ~construction:Network.Maw_dominant ~output_model:Model.MAW
      topo
  in
  Alcotest.(check bool) "falls back to reference" true
    (Network.link_impl t = Network.Reference);
  Alcotest.check_raises "packed refused"
    (Invalid_argument "Network.create: Bitset link state needs k <= 62")
    (fun () ->
      ignore
        (Network.create
           ~config:
             { Network.Config.default with link_impl = Some Network.Bitset }
           ~construction:Network.Maw_dominant ~output_model:Model.MAW topo))

(* --- fault-counter reconciliation (duplicate injections) ----------------- *)

let faulty_sut t =
  {
    Churn.base =
      {
        Churn.connect =
          (fun c ->
            match Network.connect t c with
            | Ok route -> Ok route.Network.id
            | Error e -> Error e);
        disconnect = (fun id -> ignore (Network.disconnect t id));
      };
    inject = Network.inject_fault t;
    clear = Network.clear_fault t;
    reconnect =
      (fun c ->
        match Network.connect_rearrangeable t c with
        | Ok (route, _) -> Ok route.Network.id
        | Error e -> Error e);
  }

let test_duplicate_injection_counters () =
  let sink = Tel.Sink.create () in
  let topo = Topology.make_exn ~n:3 ~m:8 ~r:3 ~k:2 in
  let t =
    Network.create
      ~config:{ Network.Config.default with telemetry = Some sink }
      ~construction:Network.Msw_dominant
      ~output_model:Model.MSW topo
  in
  (* m1 injected twice, cleared twice; m2 injected twice, never cleared;
     the re-injections and re-clear are no-ops for the network, so the
     driver must not count them either. *)
  let schedule =
    [
      (5, `Inject (Fault.Middle 1));
      (10, `Inject (Fault.Middle 1));
      (15, `Clear (Fault.Middle 1));
      (20, `Clear (Fault.Middle 1));
      (25, `Inject (Fault.Middle 2));
      (30, `Inject (Fault.Middle 2));
    ]
  in
  let s =
    Churn.run_with_faults ~telemetry:sink (rng 3) ~spec:(Topology.spec topo)
      ~model:Model.MSW
      ~fanout:(Fanout.Uniform (1, 3))
      ~steps:60 ~teardown_bias:0.3 ~schedule (faulty_sut t)
  in
  Alcotest.(check int) "stats.injected" 2 s.Churn.injected;
  Alcotest.(check int) "stats.cleared" 1 s.Churn.cleared;
  let snap = Tel.Sink.snapshot sink in
  let c name = Option.get (Tel.Metrics.find_counter snap name) in
  Alcotest.(check int) "driver and network inject counters reconcile"
    (c "wdmnet_faults_injected_total")
    (c "churn_faults_injected_total");
  Alcotest.(check int) "driver and network clear counters reconcile"
    (c "wdmnet_faults_cleared_total")
    (c "churn_faults_cleared_total");
  Alcotest.(check int) "injects counted once" 2 (c "churn_faults_injected_total");
  Alcotest.(check int) "clears counted once" 1 (c "churn_faults_cleared_total");
  Alcotest.(check int) "m2 still in force" 1 (List.length (Network.faults t))

(* --- run_timed leaves the active gauge clean ----------------------------- *)

let test_run_timed_gauge_reset () =
  let sink = Tel.Sink.create () in
  let topo = Topology.make_exn ~n:4 ~m:10 ~r:4 ~k:2 in
  let t =
    Network.create
      ~config:{ Network.Config.default with telemetry = Some sink }
      ~construction:Network.Msw_dominant
      ~output_model:Model.MSW topo
  in
  let sut =
    {
      Churn.connect =
        (fun c ->
          match Network.connect t c with
          | Ok route -> Ok route.Network.id
          | Error e -> Error e);
      disconnect = (fun id -> ignore (Network.disconnect t id));
    }
  in
  let s =
    Churn.run_timed ~telemetry:sink (rng 5) ~spec:(Topology.spec topo)
      ~model:Model.MSW ~fanout:(Fanout.Fixed 1) ~arrival_rate:2.0
      ~mean_holding:5.0 ~horizon:50. sut
  in
  (* long holding vs the horizon: some connections must still be up *)
  Alcotest.(check bool) "connections abandoned in flight" true
    (s.Churn.completed < s.Churn.t_accepted);
  Alcotest.(check bool) "network still holds them" true
    (Network.active_routes t <> []);
  let snap = Tel.Sink.snapshot sink in
  Alcotest.(check (float 0.)) "gauge reset at run end" 0.
    (Option.get (Tel.Metrics.find_gauge snap "churn_active_connections"))

let () =
  Alcotest.run "wdm_routing_equiv"
    [
      ( "primitives",
        [
          Alcotest.test_case "bitops" `Quick test_bitops;
          Alcotest.test_case "event heap" `Quick test_event_heap;
          Alcotest.test_case "free pool" `Quick test_free_pool;
        ] );
      ( "lockstep",
        [
          Alcotest.test_case "msw-dominant, min-intersection" `Slow
            test_lockstep_msw;
          Alcotest.test_case "maw-dominant, first-fit" `Slow test_lockstep_maw;
          Alcotest.test_case "k > 62 falls back" `Quick test_wide_k_fallback;
        ] );
      ( "counters",
        [
          Alcotest.test_case "duplicate injections reconcile" `Quick
            test_duplicate_injection_counters;
          Alcotest.test_case "run_timed resets active gauge" `Quick
            test_run_timed_gauge_reset;
        ] );
    ]
