(* The routing-strategy plug-in API: seeded-lockstep equivalence of the
   registered built-ins against their enum twins, plan validation,
   registry surface, and the offline batch optimizers.

   The lockstep property is the redesign's acceptance bar: a network
   built with [Named "<builtin>"] must route byte-identically to one
   built with the enum constructor — same routes, same refusals, same
   persisted digest — over a 600-op mixed setup/teardown workload, on
   both link implementations.  The codec canonicalizes named built-ins
   onto the enum tags, so digest equality covers the wire format too. *)

open Wdm_core
module Network = Wdm_multistage.Network
module Topology = Wdm_multistage.Topology
module Mesh = Wdm_mesh.Mesh_network
module Assign = Wdm_mesh.Assign
module Churn = Wdm_traffic.Churn
module Erlang = Wdm_traffic.Erlang
module Backend = Wdm_persist.Backend
module Optimizer = Wdm_lab.Optimizer
module Strategy = Wdm_core.Strategy

let ep p w = Endpoint.make ~port:p ~wl:w

(* ----- multistage lockstep --------------------------------------------- *)

(* One churn pass recording every connect outcome: the route's hops on
   admit, the refusal cause on block.  Two strategy variants behave
   identically iff their traces and final digests are equal — and
   because the churn generator only diverges after the first differing
   outcome, trace equality really does pin every decision. *)
let multistage_trace ~strategy ~link_impl ~steps =
  (* m=5 is below the nonblocking bound, so the workload genuinely
     exercises refusals and the trace equality is not vacuous *)
  let topo = Topology.make_exn ~n:4 ~m:5 ~r:4 ~k:2 in
  let net =
    Network.create
      ~config:
        { Network.Config.default with strategy; link_impl = Some link_impl }
      ~construction:Network.Msw_dominant ~output_model:Model.MSW topo
  in
  let trace = Buffer.create 4096 in
  let sut =
    {
      Churn.connect =
        (fun c ->
          match Network.connect net c with
          | Ok route ->
            Buffer.add_string trace
              (Format.asprintf "+%a;" Network.pp_route route);
            Ok route.Network.id
          | Error e ->
            Buffer.add_string trace ("!" ^ Network.Error.cause e ^ ";");
            Error e);
      disconnect = (fun id -> ignore (Network.disconnect net id));
    }
  in
  let stats =
    Churn.run
      (Random.State.make [| 4242 |])
      ~spec:(Topology.spec topo) ~model:Model.MSW
      ~fanout:(Wdm_traffic.Fanout.Zipf { max = 9; s = 1.0 })
      ~steps ~teardown_bias:0.3 sut
  in
  (Buffer.contents trace, Backend.digest (Backend.Net net), stats)

let test_multistage_lockstep () =
  List.iter
    (fun link_impl ->
      List.iter
        (fun (enum, name) ->
          let tr_enum, dg_enum, st_enum =
            multistage_trace ~strategy:enum ~link_impl ~steps:600
          in
          let tr_named, dg_named, st_named =
            multistage_trace ~strategy:(Network.Named name) ~link_impl
              ~steps:600
          in
          let label =
            Printf.sprintf "%s/%s" name
              (match link_impl with
              | Network.Bitset -> "bitset"
              | Network.Reference -> "reference")
          in
          Alcotest.(check string) (label ^ " trace") tr_enum tr_named;
          Alcotest.(check int) (label ^ " digest") dg_enum dg_named;
          Alcotest.(check int)
            (label ^ " accepted")
            st_enum.Churn.accepted st_named.Churn.accepted;
          (* the undersized fabric must actually exercise refusals,
             otherwise the equality is vacuous *)
          Alcotest.(check bool)
            (label ^ " workload blocks") true
            (st_enum.Churn.blocked > 0))
        [
          (Network.Min_intersection, "min-intersection");
          (Network.First_fit, "first-fit");
        ])
    [ Network.Bitset; Network.Reference ]

(* ----- mesh lockstep --------------------------------------------------- *)

let mesh_trace ~strategy ~arrivals =
  let config =
    {
      Mesh.Config.k = 4;
      strategy;
      mode = Wdm_mesh.Light_tree.Hierarchy;
      splitters = Mesh.Split_all;
      k_paths = 3;
    }
  in
  let net = Result.get_ok (Mesh.create ~config "nsf14") in
  let trace = Buffer.create 4096 in
  let sut =
    {
      Churn.connect =
        (fun c ->
          match Mesh.connect net c with
          | Ok route ->
            Buffer.add_string trace
              (Format.asprintf "+%a;" Mesh.pp_route route);
            Ok route.Mesh.id
          | Error e ->
            Buffer.add_string trace ("!" ^ Mesh.Error.to_string e ^ ";");
            Error e);
      disconnect = (fun id -> ignore (Mesh.disconnect net id));
    }
  in
  let point =
    Erlang.run
      (Random.State.make [| 777 |])
      ~nodes:14
      ~fanout:(Wdm_traffic.Fanout.Zipf { max = 5; s = 1.2 })
      ~offered:14. ~arrivals sut
  in
  (Buffer.contents trace, Backend.digest (Backend.Mesh net), point)

let test_mesh_lockstep () =
  List.iter
    (fun (enum, name) ->
      let tr_enum, dg_enum, pt_enum = mesh_trace ~strategy:enum ~arrivals:600 in
      let tr_named, dg_named, pt_named =
        mesh_trace ~strategy:(Assign.Named name) ~arrivals:600
      in
      Alcotest.(check string) (name ^ " trace") tr_enum tr_named;
      Alcotest.(check int) (name ^ " digest") dg_enum dg_named;
      Alcotest.(check int)
        (name ^ " blocked")
        pt_enum.Erlang.blocked pt_named.Erlang.blocked)
    [
      (Assign.First_fit, "first-fit");
      (Assign.Most_used, "most-used");
      (Assign.Least_used, "least-used");
      (Assign.Random, "random");
      (Assign.Coloring, "coloring");
    ]

(* ----- registry surface ------------------------------------------------ *)

let test_registry () =
  (* the lab strategies resolve; garbage does not *)
  List.iter
    (fun name ->
      Alcotest.(check bool) ("multistage " ^ name) true
        (Network.Strategy.resolve name <> None))
    [ "min-intersection"; "adaptive"; "annealed"; "crosstalk";
      "crosstalk:first-fit:15" ];
  List.iter
    (fun name ->
      Alcotest.(check bool) ("mesh " ^ name) true
        (Assign.resolve_plugin name <> None))
    [ "first-fit"; "adaptive"; "annealed"; "crosstalk:most-used:18" ];
  Alcotest.(check bool) "unknown rejected" true
    (Result.is_error (Network.strategy_of_string "no-such-strategy"));
  Alcotest.(check bool) "bad crosstalk rejected" true
    (Result.is_error (Assign.strategy_of_string "crosstalk:nope"));
  (* create refuses unresolvable Named up front *)
  let topo = Topology.make_exn ~n:2 ~m:4 ~r:2 ~k:2 in
  (match
     Network.create
       ~config:{ Network.Config.default with strategy = Network.Named "nope" }
       ~construction:Network.Msw_dominant ~output_model:Model.MSW topo
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown Named accepted by create");
  match
    Mesh.create
      ~config:
        { Mesh.Config.default with Mesh.Config.strategy = Assign.Named "nope" }
      "ring8"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown Named accepted by mesh build"

(* A lab strategy must survive the snapshot/restore codec: new names
   take the string-carrying tag and come back routing the same. *)
let test_named_roundtrip () =
  let topo = Topology.make_exn ~n:4 ~m:8 ~r:4 ~k:2 in
  let net =
    Network.create
      ~config:
        { Network.Config.default with strategy = Network.Named "adaptive" }
      ~construction:Network.Msw_dominant ~output_model:Model.MSW topo
  in
  let conn =
    Connection.make_exn ~source:(ep 1 1) ~destinations:[ ep 2 1; ep 6 1 ]
  in
  ignore (Result.get_ok (Network.connect net conn));
  let b = Backend.Net net in
  let b' = Result.get_ok (Backend.restore (Backend.encode_state b)) in
  Alcotest.(check int) "digest" (Backend.digest b) (Backend.digest b');
  match b' with
  | Backend.Net net' ->
    Alcotest.(check bool) "strategy survives" true
      (Network.strategy net' = Network.Named "adaptive")
  | Backend.Mesh _ -> Alcotest.fail "wrong backend kind"

(* ----- determinism of the lab strategies ------------------------------- *)

(* Stochastic plug-ins derive all randomness from the request key, so
   rebuilding the network and replaying the same ops reproduces routes
   exactly — the WAL-replay contract. *)
let test_annealed_deterministic () =
  let tr1, dg1, _ = multistage_trace ~strategy:(Network.Named "annealed")
      ~link_impl:Network.Bitset ~steps:400 in
  let tr2, dg2, _ = multistage_trace ~strategy:(Network.Named "annealed")
      ~link_impl:Network.Bitset ~steps:400 in
  Alcotest.(check string) "trace" tr1 tr2;
  Alcotest.(check int) "digest" dg1 dg2;
  let mtr1, mdg1, _ = mesh_trace ~strategy:(Assign.Named "annealed") ~arrivals:400 in
  let mtr2, mdg2, _ = mesh_trace ~strategy:(Assign.Named "annealed") ~arrivals:400 in
  Alcotest.(check string) "mesh trace" mtr1 mtr2;
  Alcotest.(check int) "mesh digest" mdg1 mdg2

(* The crosstalk decorator admits a subset of its base strategy's
   choices: everything it routes, the base routes identically or
   better. *)
let test_crosstalk_decorator () =
  let _, _, base =
    multistage_trace ~strategy:(Network.Named "min-intersection")
      ~link_impl:Network.Bitset ~steps:600
  in
  let _, _, gated =
    multistage_trace ~strategy:(Network.Named "crosstalk:min-intersection:25")
      ~link_impl:Network.Bitset ~steps:600
  in
  Alcotest.(check bool) "tighter budget blocks at least as much" true
    (gated.Churn.blocked >= base.Churn.blocked)

(* ----- offline batch optimizers ---------------------------------------- *)

(* Admit the batch in candidate order into a fresh undersized fabric;
   the score is the number of requests that fit. *)
let batch_score batch order =
  let topo = Topology.make_exn ~n:4 ~m:6 ~r:4 ~k:2 in
  let net =
    Network.create ~construction:Network.Msw_dominant ~output_model:Model.MSW
      topo
  in
  List.fold_left
    (fun acc i ->
      match Network.connect net (List.nth batch i) with
      | Ok _ -> acc + 1
      | Error _ -> acc)
    0 order

let make_batch () =
  (* heavy multicasts first in arrival order: a deliberately bad order
     the optimizers can improve on *)
  let rng = Random.State.make [| 99 |] in
  List.init 24 (fun i ->
      let src = 1 + ((i * 5) mod 16) in
      let f = if i < 8 then 6 else 1 + Random.State.int rng 3 in
      let dests =
        List.init f (fun j -> ep (1 + ((src + (3 * j)) mod 16)) 1)
      in
      Connection.make_exn ~source:(ep src 1) ~destinations:dests)

let test_optimizer () =
  let batch = make_batch () in
  let n = List.length batch in
  let score = batch_score batch in
  let identity_score = score (List.init n (fun i -> i)) in
  let a1 = Optimizer.anneal ~seed:7 ~score n in
  let a2 = Optimizer.anneal ~seed:7 ~score n in
  Alcotest.(check bool) "anneal deterministic" true (a1 = a2);
  Alcotest.(check bool) "anneal is a permutation" true
    (List.sort compare a1.Optimizer.order = List.init n (fun i -> i));
  Alcotest.(check bool) "anneal >= arrival order" true
    (a1.Optimizer.score >= identity_score);
  let g1 = Optimizer.evolve ~seed:7 ~score n in
  let g2 = Optimizer.evolve ~seed:7 ~score n in
  Alcotest.(check bool) "evolve deterministic" true (g1 = g2);
  Alcotest.(check bool) "evolve is a permutation" true
    (List.sort compare g1.Optimizer.order = List.init n (fun i -> i));
  Alcotest.(check bool) "evolve >= arrival order" true
    (g1.Optimizer.score >= identity_score)

(* ----- shared deterministic RNG ---------------------------------------- *)

let test_det_rng () =
  let a = Strategy.Det_rng.make ~seed:123 in
  let b = Strategy.Det_rng.make ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int) "stream" (Strategy.Det_rng.int a 1000)
      (Strategy.Det_rng.int b 1000)
  done;
  Alcotest.(check bool) "mix separates" true
    (Strategy.mix 1 2 <> Strategy.mix 2 1)

let () =
  Alcotest.run "wdm_strategy"
    [
      ( "lockstep",
        [
          Alcotest.test_case "multistage built-ins = enums" `Quick
            test_multistage_lockstep;
          Alcotest.test_case "mesh built-ins = enums" `Quick
            test_mesh_lockstep;
        ] );
      ( "registry",
        [
          Alcotest.test_case "resolution and refusal" `Quick test_registry;
          Alcotest.test_case "named strategy codec roundtrip" `Quick
            test_named_roundtrip;
        ] );
      ( "lab",
        [
          Alcotest.test_case "annealed replays deterministically" `Quick
            test_annealed_deterministic;
          Alcotest.test_case "crosstalk budget only tightens" `Quick
            test_crosstalk_decorator;
          Alcotest.test_case "batch optimizers" `Quick test_optimizer;
          Alcotest.test_case "det rng" `Quick test_det_rng;
        ] );
    ]
