(* Tests for the three-stage routing engine (Section 3): route shape,
   state bookkeeping, the nonblocking guarantees of Theorems 1-2 under
   randomized churn, the Fig. 10 scenario, and end-to-end physical
   realization of routed connections on the built optical fabric. *)

open Wdm_core
open Wdm_multistage

let ep port wl = Endpoint.make ~port ~wl
let conn src dests = Connection.make_exn ~source:src ~destinations:dests

let net ?strategy ?x_limit ~construction ~output_model ~n ~m ~r ~k () =
  Network.create
    ~config:
      {
        Network.Config.default with
        strategy = Option.value ~default:Network.Min_intersection strategy;
        x_limit;
      }
    ~construction ~output_model
    (Topology.make_exn ~n ~m ~r ~k)

let check_ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Format.asprintf "%a" Network.pp_error e)

(* --- basic routing ------------------------------------------------------ *)

let test_unicast_route_shape () =
  let t = net ~construction:Network.Msw_dominant ~output_model:Model.MSW
      ~n:2 ~m:4 ~r:2 ~k:2 () in
  let route = check_ok (Network.connect t (conn (ep 1 2) [ ep 3 2 ])) in
  Alcotest.(check int) "input switch" 1 route.Network.input_switch;
  (match route.Network.hops with
  | [ { Network.middle; stage1_wl; serves } ] ->
    Alcotest.(check bool) "middle in range" true (middle >= 1 && middle <= 4);
    (* MSW-dominant: everything rides the source wavelength plane *)
    Alcotest.(check int) "stage1 on l2" 2 stage1_wl;
    Alcotest.(check (list (pair int int))) "serves o2 on l2" [ (2, 2) ] serves
  | hops -> Alcotest.fail (Printf.sprintf "expected 1 hop, got %d" (List.length hops)));
  Alcotest.(check int) "one active route" 1 (List.length (Network.active_routes t))

let test_multicast_within_x_limit () =
  let t = net ~construction:Network.Msw_dominant ~output_model:Model.MSW
      ~n:4 ~m:13 ~r:4 ~k:2 () in
  Alcotest.(check int) "x_limit defaults to optimal" 2 (Network.x_limit t);
  (* fanout across all 4 output modules *)
  let route =
    check_ok
      (Network.connect t (conn (ep 1 1) [ ep 1 1; ep 5 1; ep 9 1; ep 13 1 ]))
  in
  Alcotest.(check bool) "within x_limit" true
    (List.length route.Network.hops <= Network.x_limit t);
  (* every output module served exactly once *)
  let served =
    List.concat_map (fun h -> List.map fst h.Network.serves) route.Network.hops
    |> List.sort Int.compare
  in
  Alcotest.(check (list int)) "all modules served" [ 1; 2; 3; 4 ] served

let test_disconnect_restores_state () =
  let t = net ~construction:Network.Msw_dominant ~output_model:Model.MSW
      ~n:2 ~m:4 ~r:2 ~k:2 () in
  let r1 = check_ok (Network.connect t (conn (ep 1 1) [ ep 1 1; ep 3 1 ])) in
  Alcotest.(check bool) "multiset non-empty" true
    (List.exists
       (fun j -> Multiset.total (Network.destination_multiset t j) > 0)
       [ 1; 2; 3; 4 ]);
  let returned = Result.get_ok (Network.disconnect t r1.Network.id) in
  Alcotest.(check int) "same route returned" r1.Network.id returned.Network.id;
  List.iter
    (fun j ->
      Alcotest.(check int) "multisets empty" 0
        (Multiset.total (Network.destination_multiset t j)))
    [ 1; 2; 3; 4 ];
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          Alcotest.(check int) "stage1 links free" 0
            (Network.stage1_in_use t ~input_switch:i ~middle:j))
        [ 1; 2; 3; 4 ])
    [ 1; 2 ];
  Alcotest.(check int) "no active routes" 0 (List.length (Network.active_routes t));
  (* the same connection can be admitted again *)
  ignore (check_ok (Network.connect t (conn (ep 1 1) [ ep 1 1; ep 3 1 ])))

let test_admission_errors () =
  let t = net ~construction:Network.Msw_dominant ~output_model:Model.MSW
      ~n:2 ~m:4 ~r:2 ~k:2 () in
  ignore (check_ok (Network.connect t (conn (ep 1 1) [ ep 1 1 ])));
  (match Network.connect t (conn (ep 1 1) [ ep 2 1 ]) with
  | Error (Network.Source_busy e) ->
    Alcotest.(check bool) "source" true (Endpoint.equal e (ep 1 1))
  | _ -> Alcotest.fail "expected Source_busy");
  (match Network.connect t (conn (ep 2 1) [ ep 1 1 ]) with
  | Error (Network.Destination_busy _) -> ()
  | _ -> Alcotest.fail "expected Destination_busy");
  (match Network.connect t (conn (ep 2 1) [ ep 1 2 ]) with
  | Error (Network.Invalid (Assignment.Model_violation _)) -> ()
  | _ -> Alcotest.fail "expected model violation under MSW");
  match Network.disconnect t 999 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unknown route error"

let test_duplicate_source_wavelengths_are_independent () =
  (* A node may source up to k connections, one per wavelength. *)
  let t = net ~construction:Network.Msw_dominant ~output_model:Model.MSW
      ~n:2 ~m:4 ~r:2 ~k:2 () in
  ignore (check_ok (Network.connect t (conn (ep 1 1) [ ep 3 1 ])));
  ignore (check_ok (Network.connect t (conn (ep 1 2) [ ep 3 2 ])))

(* --- state invariant under churn --------------------------------------- *)

let reconstruct_occupancy t =
  (* Recompute per-link usage from the active routes. *)
  let topo = Network.topology t in
  let s1 = Hashtbl.create 64 and s2 = Hashtbl.create 64 in
  List.iter
    (fun (route : Network.route) ->
      List.iter
        (fun (h : Network.hop) ->
          let key1 = (route.Network.input_switch, h.Network.middle, h.Network.stage1_wl) in
          Alcotest.(check bool) "stage1 slot used once" false (Hashtbl.mem s1 key1);
          Hashtbl.add s1 key1 ();
          List.iter
            (fun (p, w2) ->
              let key2 = (h.Network.middle, p, w2) in
              Alcotest.(check bool) "stage2 slot used once" false (Hashtbl.mem s2 key2);
              Hashtbl.add s2 key2 ())
            h.Network.serves)
        route.Network.hops)
    (Network.active_routes t);
  (* aggregate per middle -> multiset must match the network's view *)
  for j = 1 to topo.Topology.m do
    let expected = ref (Multiset.create ~r:topo.Topology.r ~k:topo.Topology.k) in
    Hashtbl.iter
      (fun (j', p, _) () -> if j' = j then expected := Multiset.add !expected p)
      s2;
    Alcotest.(check bool)
      (Printf.sprintf "multiset of middle %d" j)
      true
      (Multiset.equal !expected (Network.destination_multiset t j))
  done

let churn_sut t =
  {
    Wdm_traffic.Churn.connect =
      (fun c ->
        match Network.connect t c with
        | Ok route -> Ok route.Network.id
        | Error e -> Error e);
    disconnect = (fun id -> ignore (Network.disconnect t id));
  }

let test_state_invariant_under_churn () =
  let t = net ~construction:Network.Maw_dominant ~output_model:Model.MAW
      ~n:3 ~m:8 ~r:3 ~k:2 () in
  let rng = Random.State.make [| 42 |] in
  let spec = Topology.spec (Network.topology t) in
  let _stats =
    Wdm_traffic.Churn.run rng ~spec ~model:Model.MAW
      ~fanout:(Wdm_traffic.Fanout.Uniform (1, 3)) ~steps:300 ~teardown_bias:0.4
      (churn_sut t)
  in
  reconstruct_occupancy t

let test_route_wavelength_discipline () =
  (* After churn, every live route must obey its construction's
     wavelength rules on both hops. *)
  let check ~construction ~output_model =
    let t = net ~construction ~output_model ~n:3 ~m:9 ~r:3 ~k:3 () in
    let rng = Random.State.make [| 77 |] in
    let spec = Topology.spec (Network.topology t) in
    let _ =
      Wdm_traffic.Churn.run rng ~spec ~model:output_model
        ~fanout:(Wdm_traffic.Fanout.Uniform (1, 4)) ~steps:300 ~teardown_bias:0.4
        (churn_sut t)
    in
    List.iter
      (fun (route : Network.route) ->
        let src_wl = route.Network.connection.Connection.source.Endpoint.wl in
        List.iter
          (fun (h : Network.hop) ->
            (match construction with
            | Network.Msw_dominant ->
              Alcotest.(check int) "stage1 rides source plane" src_wl
                h.Network.stage1_wl
            | Network.Maw_dominant ->
              Alcotest.(check bool) "stage1 in range" true
                (h.Network.stage1_wl >= 1 && h.Network.stage1_wl <= 3));
            List.iter
              (fun (_, w2) ->
                match (construction, output_model) with
                | Network.Msw_dominant, _ | _, Model.MSW ->
                  Alcotest.(check int) "stage2 pinned to source plane" src_wl w2
                | Network.Maw_dominant, _ ->
                  Alcotest.(check bool) "stage2 in range" true (w2 >= 1 && w2 <= 3))
              h.Network.serves)
          route.Network.hops)
      (Network.active_routes t)
  in
  check ~construction:Network.Msw_dominant ~output_model:Model.MSW;
  check ~construction:Network.Msw_dominant ~output_model:Model.MAW;
  check ~construction:Network.Maw_dominant ~output_model:Model.MAW

let test_route_covers_exact_fanout () =
  (* The hops of a route serve exactly the output modules its connection
     spans, each exactly once. *)
  let t = net ~construction:Network.Msw_dominant ~output_model:Model.MAW
      ~n:3 ~m:9 ~r:3 ~k:2 () in
  let rng = Random.State.make [| 88 |] in
  let spec = Topology.spec (Network.topology t) in
  let _ =
    Wdm_traffic.Churn.run rng ~spec ~model:Model.MAW
      ~fanout:(Wdm_traffic.Fanout.Uniform (2, 6)) ~steps:300 ~teardown_bias:0.4
      (churn_sut t)
  in
  let topo = Network.topology t in
  List.iter
    (fun (route : Network.route) ->
      let served =
        List.concat_map
          (fun (h : Network.hop) -> List.map fst h.Network.serves)
          route.Network.hops
        |> List.sort Int.compare
      in
      let wanted =
        route.Network.connection.Connection.destinations
        |> List.map (fun (d : Endpoint.t) -> fst (Topology.switch_of_port topo d.port))
        |> List.sort_uniq Int.compare
      in
      Alcotest.(check (list int)) "exact cover, no duplicates" wanted served)
    (Network.active_routes t)

(* --- nonblocking at the theorem bounds --------------------------------- *)

let nonblocking_case ~construction ~output_model ~n ~r ~k ~seed ~steps () =
  let eval =
    match construction with
    | Network.Msw_dominant -> Conditions.msw_dominant ~n ~r
    | Network.Maw_dominant -> Conditions.maw_dominant ~n ~r ~k
  in
  let t = net ~construction ~output_model ~n ~m:eval.Conditions.m_min ~r ~k () in
  let rng = Random.State.make [| seed |] in
  let spec = Topology.spec (Network.topology t) in
  let blocked_detail = ref None in
  let stats =
    Wdm_traffic.Churn.run rng ~spec ~model:output_model
      ~fanout:(Wdm_traffic.Fanout.Zipf { max = n * r; s = 1.2 })
      ~steps ~teardown_bias:0.35
      ~on_blocked:(fun c e ->
        if !blocked_detail = None then
          blocked_detail := Some (Format.asprintf "%a: %a" Connection.pp c Network.pp_error e))
      (churn_sut t)
  in
  (match !blocked_detail with
  | Some d -> Alcotest.fail ("blocked below theorem bound: " ^ d)
  | None -> ());
  Alcotest.(check int) "no blocking" 0 stats.Wdm_traffic.Churn.blocked;
  Alcotest.(check bool) "traffic flowed" true (stats.Wdm_traffic.Churn.accepted > 20)

let nonblocking_suite =
  List.concat_map
    (fun (construction, cname) ->
      List.concat_map
        (fun output_model ->
          (* MAW-dominant with an MSW output stage pins the last hop to
             the source wavelength; Theorem 2's multiset argument
             assumes the output stage can retune (see Network), so we
             exercise the MSW output model under MSW-dominant only. *)
          if construction = Network.Maw_dominant && output_model = Model.MSW then []
          else
            List.map
              (fun (n, r, k, seed) ->
                Alcotest.test_case
                  (Format.asprintf "%s/%a n=%d r=%d k=%d" cname Model.pp
                     output_model n r k)
                  `Slow
                  (nonblocking_case ~construction ~output_model ~n ~r ~k ~seed
                     ~steps:400))
              [ (2, 2, 1, 7); (2, 2, 2, 11); (3, 3, 2, 13); (4, 4, 2, 17); (3, 4, 3, 19) ])
        Model.all)
    [ (Network.Msw_dominant, "MSW-dom"); (Network.Maw_dominant, "MAW-dom") ]

let test_blocking_below_bound_exists () =
  (* At m = n (the topological minimum) an adversarial-ish load must
     eventually block an MSW-dominant network — evidence that the
     theorem's margin is doing real work. *)
  let t = net ~construction:Network.Msw_dominant ~output_model:Model.MSW
      ~n:4 ~m:4 ~r:4 ~k:1 () in
  let rng = Random.State.make [| 23 |] in
  let spec = Topology.spec (Network.topology t) in
  let stats =
    Wdm_traffic.Churn.run rng ~spec ~model:Model.MSW
      ~fanout:(Wdm_traffic.Fanout.Uniform (2, 4)) ~steps:600 ~teardown_bias:0.3
      (churn_sut t)
  in
  Alcotest.(check bool) "blocking observed" true (stats.Wdm_traffic.Churn.blocked > 0)

(* --- Fig. 10 ------------------------------------------------------------ *)

let test_fig10 () =
  let msw = Scenarios.fig10 Network.Msw_dominant in
  Alcotest.(check int) "prelude admitted" 3 msw.Scenarios.admitted;
  (match msw.Scenarios.probe_result with
  | Error (Network.Blocked _) -> ()
  | Error e -> Alcotest.fail (Format.asprintf "wrong error: %a" Network.pp_error e)
  | Ok _ -> Alcotest.fail "MSW middles should block the probe");
  let maw = Scenarios.fig10 Network.Maw_dominant in
  Alcotest.(check int) "prelude admitted" 3 maw.Scenarios.admitted;
  match maw.Scenarios.probe_result with
  | Ok _ -> ()
  | Error e ->
    Alcotest.fail (Format.asprintf "MAW middles should route: %a" Network.pp_error e)

(* --- strategies --------------------------------------------------------- *)

let test_strategies_agree_on_feasibility () =
  (* On an amply-provisioned network all three selection strategies
     admit the same (randomly generated) load. *)
  List.iter
    (fun strategy ->
      let t = net ~strategy ~construction:Network.Msw_dominant
          ~output_model:Model.MSW ~n:3 ~m:9 ~r:3 ~k:2 () in
      let rng = Random.State.make [| 5 |] in
      let spec = Topology.spec (Network.topology t) in
      let stats =
        Wdm_traffic.Churn.run rng ~spec ~model:Model.MSW
          ~fanout:(Wdm_traffic.Fanout.Uniform (1, 3)) ~steps:200 ~teardown_bias:0.35
          (churn_sut t)
      in
      Alcotest.(check int) "no blocking" 0 stats.Wdm_traffic.Churn.blocked)
    [ Network.Min_intersection; Network.First_fit; Network.Exhaustive ]

let test_exhaustive_not_worse_than_greedy () =
  (* Where greedy finds a route, exhaustive must too (it subsumes it). *)
  let mk strategy =
    net ~strategy ~x_limit:2 ~construction:Network.Msw_dominant
      ~output_model:Model.MSW ~n:2 ~m:4 ~r:2 ~k:2 ()
  in
  let greedy = mk Network.Min_intersection in
  let exhaustive = mk Network.Exhaustive in
  let reqs =
    [
      conn (ep 1 1) [ ep 1 1; ep 3 1 ];
      conn (ep 2 1) [ ep 2 1; ep 4 1 ];
      conn (ep 3 1) [ ep 2 2; ep 4 2 ];
      conn (ep 3 2) [ ep 1 2 ];
    ]
  in
  List.iter
    (fun c ->
      let g = Result.is_ok (Network.connect greedy c) in
      let e = Result.is_ok (Network.connect exhaustive c) in
      Alcotest.(check bool) "agree" g e)
    reqs

(* --- physical realization ----------------------------------------------- *)

let physical_case ~construction ~output_model ~n ~r ~k ~seed () =
  let eval =
    match construction with
    | Network.Msw_dominant -> Conditions.msw_dominant ~n ~r
    | Network.Maw_dominant -> Conditions.maw_dominant ~n ~r ~k
  in
  let topo = Topology.make_exn ~n ~m:eval.Conditions.m_min ~r ~k in
  let t = Network.create ~construction ~output_model topo in
  let phys = Physical.create ~construction ~output_model topo in
  (* route a random batch, then realize it optically *)
  let rng = Random.State.make [| seed |] in
  let spec = Topology.spec topo in
  let _stats =
    Wdm_traffic.Churn.run rng ~spec ~model:output_model
      ~fanout:(Wdm_traffic.Fanout.Uniform (1, 4)) ~steps:120 ~teardown_bias:0.3
      (churn_sut t)
  in
  let routes = Network.active_routes t in
  Alcotest.(check bool) "have live routes" true (List.length routes > 0);
  match Physical.realize phys routes with
  | Ok _ -> ()
  | Error f ->
    Alcotest.fail
      (Format.asprintf "optical realization failed: %a"
         Wdm_crossbar.Delivery.pp_failure f)

let physical_suite =
  [
    Alcotest.test_case "MSW-dom/MSW optical" `Slow
      (physical_case ~construction:Network.Msw_dominant ~output_model:Model.MSW
         ~n:2 ~r:2 ~k:2 ~seed:3);
    Alcotest.test_case "MSW-dom/MAW optical" `Slow
      (physical_case ~construction:Network.Msw_dominant ~output_model:Model.MAW
         ~n:2 ~r:2 ~k:2 ~seed:4);
    Alcotest.test_case "MSW-dom/MSDW optical" `Slow
      (physical_case ~construction:Network.Msw_dominant ~output_model:Model.MSDW
         ~n:2 ~r:2 ~k:2 ~seed:5);
    Alcotest.test_case "MAW-dom/MAW optical" `Slow
      (physical_case ~construction:Network.Maw_dominant ~output_model:Model.MAW
         ~n:2 ~r:2 ~k:2 ~seed:6);
    Alcotest.test_case "MAW-dom/MAW optical 3x3" `Slow
      (physical_case ~construction:Network.Maw_dominant ~output_model:Model.MAW
         ~n:3 ~r:3 ~k:2 ~seed:7);
  ]

let test_physical_tracks_every_step () =
  (* After EVERY setup or teardown, the physical fabric programmed from
     the live routes must deliver exactly the live connections. *)
  let topo = Topology.make_exn ~n:2 ~m:4 ~r:2 ~k:2 in
  let t = Network.create ~construction:Network.Msw_dominant
      ~output_model:Model.MAW topo in
  let phys = Physical.create ~construction:Network.Msw_dominant
      ~output_model:Model.MAW topo in
  let verify_now () =
    match Physical.realize phys (Network.active_routes t) with
    | Ok _ -> ()
    | Error f ->
      Alcotest.fail (Format.asprintf "%a" Wdm_crossbar.Delivery.pp_failure f)
  in
  let sut =
    {
      Wdm_traffic.Churn.connect =
        (fun c ->
          match Network.connect t c with
          | Ok route ->
            verify_now ();
            Ok route.Network.id
          | Error e -> Error e);
      disconnect =
        (fun id ->
          ignore (Network.disconnect t id);
          verify_now ());
    }
  in
  let stats =
    Wdm_traffic.Churn.run (Random.State.make [| 314 |])
      ~spec:(Topology.spec topo) ~model:Model.MAW
      ~fanout:(Wdm_traffic.Fanout.Uniform (1, 3)) ~steps:60 ~teardown_bias:0.4
      sut
  in
  Alcotest.(check bool) "steps exercised" true
    (stats.Wdm_traffic.Churn.accepted + stats.Wdm_traffic.Churn.torn_down > 30)

let test_physical_component_census () =
  List.iter
    (fun (construction, output_model) ->
      let topo = Topology.make_exn ~n:2 ~m:4 ~r:2 ~k:2 in
      let phys = Physical.create ~construction ~output_model topo in
      let b = Cost.breakdown ~construction ~output_model topo in
      Alcotest.(check int) "crosspoints" b.Cost.total_crosspoints
        (Physical.crosspoints phys);
      Alcotest.(check int) "converters" b.Cost.total_converters
        (Physical.converters phys))
    [
      (Network.Msw_dominant, Model.MSW);
      (Network.Msw_dominant, Model.MSDW);
      (Network.Msw_dominant, Model.MAW);
      (Network.Maw_dominant, Model.MAW);
    ]

(* --- capacity equality (Section 3.1 remark) ------------------------------ *)

(* "An N x N k-wavelength nonblocking multistage WDM network under a
   given model will have the same multicast capacity as a crossbar-based
   network under the same model": route EVERY enumerated assignment of
   the small network, connection by connection, on a fresh
   theorem-provisioned three-stage network. *)
let capacity_equality_case ~construction ~output_model ~n ~r ~k () =
  let eval =
    match construction with
    | Network.Msw_dominant -> Conditions.msw_dominant ~n ~r
    | Network.Maw_dominant -> Conditions.maw_dominant ~n ~r ~k
  in
  let topo = Topology.make_exn ~n ~m:eval.Conditions.m_min ~r ~k in
  let spec = Topology.spec topo in
  let count = ref 0 in
  (* the budget estimate is model-independent; under MSW the search
     space is only (N+1)^(Nk), so allow the larger nominal figure *)
  Wdm_core.Enumerate.iter_assignments ~budget:5e7 spec output_model (fun a ->
      incr count;
      let t = Network.create ~construction ~output_model topo in
      List.iter
        (fun c ->
          match Network.connect t c with
          | Ok _ -> ()
          | Error e ->
            Alcotest.fail
              (Format.asprintf "assignment %a rejected at %a: %a" Assignment.pp
                 a Connection.pp c Network.pp_error e))
        a.Assignment.connections);
  Alcotest.(check bool) "assignments exercised" true (!count > 100)

let capacity_equality_suite =
  [
    Alcotest.test_case "MSW-dom/MSW N=4 k=1 (625 assignments)" `Slow
      (capacity_equality_case ~construction:Network.Msw_dominant
         ~output_model:Model.MSW ~n:2 ~r:2 ~k:1);
    Alcotest.test_case "MSW-dom/MAW N=4 k=1" `Slow
      (capacity_equality_case ~construction:Network.Msw_dominant
         ~output_model:Model.MAW ~n:2 ~r:2 ~k:1);
    Alcotest.test_case "MAW-dom/MAW N=4 k=1" `Slow
      (capacity_equality_case ~construction:Network.Maw_dominant
         ~output_model:Model.MAW ~n:2 ~r:2 ~k:1);
    (* k = 2 under MSW: 5^8 = 390 625 assignments, still exhaustive *)
    Alcotest.test_case "MSW-dom/MSW N=4 k=2 (390625 assignments)" `Slow
      (capacity_equality_case ~construction:Network.Msw_dominant
         ~output_model:Model.MSW ~n:2 ~r:2 ~k:2);
  ]

(* --- fault injection -------------------------------------------------------- *)

let test_fail_middle_returns_victims () =
  let t = net ~construction:Network.Msw_dominant ~output_model:Model.MSW
      ~n:2 ~m:4 ~r:2 ~k:1 () in
  let c = conn (ep 1 1) [ ep 3 1 ] in
  let route = check_ok (Network.connect t c) in
  let j = (List.hd route.Network.hops).Network.middle in
  let victims = Network.fail_middle t j in
  Alcotest.(check int) "one victim" 1 (List.length victims);
  Alcotest.(check bool) "the victim" true (Connection.equal c (List.hd victims));
  Alcotest.(check int) "route gone" 0 (List.length (Network.active_routes t));
  Alcotest.(check (list int)) "failure recorded" [ j ] (Network.failed_middles t);
  (* endpoints freed: the victim can be re-requested and avoids j *)
  let route2 = check_ok (Network.connect t c) in
  Alcotest.(check bool) "rerouted around the fault" true
    ((List.hd route2.Network.hops).Network.middle <> j);
  Network.repair_middle t j;
  Alcotest.(check (list int)) "repaired" [] (Network.failed_middles t)

let test_fault_tolerant_provisioning () =
  (* m = m_min + f stays nonblocking under f faults. *)
  let f = 2 in
  let eval = Conditions.msw_dominant ~n:3 ~r:3 in
  let t = net ~construction:Network.Msw_dominant ~output_model:Model.MSW
      ~n:3 ~m:(eval.Conditions.m_min + f) ~r:3 ~k:2 () in
  Alcotest.(check (list Alcotest.string)) "no victims on idle fail" []
    (List.map (Format.asprintf "%a" Connection.pp) (Network.fail_middle t 1));
  ignore (Network.fail_middle t 2);
  let stats =
    Wdm_traffic.Churn.run (Random.State.make [| 71 |])
      ~spec:(Topology.spec (Network.topology t)) ~model:Model.MSW
      ~fanout:(Wdm_traffic.Fanout.Zipf { max = 9; s = 1.1 })
      ~steps:500 ~teardown_bias:0.35 (churn_sut t)
  in
  Alcotest.(check int) "still nonblocking with f faults" 0
    stats.Wdm_traffic.Churn.blocked

let test_all_middles_failed_blocks_everything () =
  let t = net ~construction:Network.Msw_dominant ~output_model:Model.MSW
      ~n:2 ~m:4 ~r:2 ~k:1 () in
  for j = 1 to 4 do
    ignore (Network.fail_middle t j)
  done;
  match Network.connect t (conn (ep 1 1) [ ep 1 1 ]) with
  | Error (Network.Blocked { available_middles = []; _ }) -> ()
  | _ -> Alcotest.fail "expected total blocking"

let test_fail_middle_validation () =
  let t = net ~construction:Network.Msw_dominant ~output_model:Model.MSW
      ~n:2 ~m:4 ~r:2 ~k:1 () in
  Alcotest.check_raises "bad middle"
    (Invalid_argument "Network.fail_middle: bad middle") (fun () ->
      ignore (Network.fail_middle t 5))

(* --- rearrangement -------------------------------------------------------- *)

(* Under churn on an undersized network, some blocked requests are only
   order-blocked and a single rearrangement admits them (roughly half
   here are capacity-blocked and stay refused — rearrangement never
   lies).  Rearranged victims keep their route id, so the driver's
   id-based teardowns keep succeeding across moves. *)
let test_rearrangement_unblocks () =
  let t = net ~construction:Network.Msw_dominant ~output_model:Model.MSW
      ~n:3 ~m:3 ~r:3 ~k:1 () in
  let blocked = ref 0 and rescued = ref 0 in
  let sut =
    {
      Wdm_traffic.Churn.connect =
        (fun c ->
          match Network.connect t c with
          | Ok route -> Ok route.Network.id
          | Error _ -> (
            incr blocked;
            match Network.connect_rearrangeable t c with
            | Ok (route, moved) ->
              Alcotest.(check int) "exactly one move" 1 moved;
              incr rescued;
              Ok route.Network.id
            | Error e -> Error e));
      disconnect = (fun id -> ignore (Network.disconnect t id));
    }
  in
  let _ =
    Wdm_traffic.Churn.run (Random.State.make [| 5 |])
      ~spec:(Topology.spec (Network.topology t)) ~model:Model.MSW
      ~fanout:(Wdm_traffic.Fanout.Zipf { max = 9; s = 1.0 })
      ~steps:3000 ~teardown_bias:0.3 sut
  in
  Alcotest.(check bool) "undersized network blocked" true (!blocked > 100);
  Alcotest.(check bool) "rearrangement rescued some" true (!rescued >= 1);
  (* bookkeeping must be intact after all the moves and rollbacks *)
  reconstruct_occupancy t

let test_rearrangement_noop_when_free () =
  let t = net ~construction:Network.Msw_dominant ~output_model:Model.MSW
      ~n:2 ~m:4 ~r:2 ~k:1 () in
  match Network.connect_rearrangeable t (conn (ep 1 1) [ ep 1 1 ]) with
  | Ok (_, moved) -> Alcotest.(check int) "no moves needed" 0 moved
  | Error e -> Alcotest.fail (Format.asprintf "%a" Network.pp_error e)

(* A rearrangement move must not renumber the victim: drivers (churn,
   the faults campaign) track live connections by route id and tear
   them down with {!Network.disconnect} later.  Before the id was
   preserved, the moved route stayed allocated forever under a fresh
   id while the driver's handle went stale — leaking capacity. *)
let test_rearrangement_preserves_victim_id () =
  let t = net ~x_limit:1 ~construction:Network.Msw_dominant
      ~output_model:Model.MSW ~n:2 ~m:2 ~r:2 ~k:1 () in
  (* a on middle 1: in-module 1 -> out-module 1 *)
  let a = check_ok (Network.connect t (conn (ep 1 1) [ ep 1 1 ])) in
  (* steer b onto middle 2 by occupying middle 1's in-module-2 link
     with a temporary route, then releasing it *)
  let tmp = check_ok (Network.connect t (conn (ep 4 1) [ ep 3 1 ])) in
  let b = check_ok (Network.connect t (conn (ep 3 1) [ ep 4 1 ])) in
  (match Network.disconnect t tmp.Network.id with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Network.Error.disconnect_to_string e));
  (* probe in-module 1 -> out-module 2: middle 1's stage-1 link is
     held by a, middle 2's stage-2 link by b — order-blocked until one
     victim moves *)
  match Network.connect_rearrangeable t (conn (ep 2 1) [ ep 3 1 ]) with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Network.pp_error e)
  | Ok (probe, moved) ->
    Alcotest.(check int) "one move" 1 moved;
    (* the moved victim answers to its original id, on new hops *)
    (match Network.find_route t a.Network.id with
    | None -> Alcotest.fail "victim id vanished after rearrangement"
    | Some a' ->
      Alcotest.(check bool) "same connection" true
        (Connection.equal a'.Network.connection a.Network.connection);
      Alcotest.(check bool) "hops actually changed" true
        (a'.Network.hops <> a.Network.hops));
    (* an id-based teardown — what the churn driver does — still works *)
    (match Network.disconnect t a.Network.id with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (Network.Error.disconnect_to_string e));
    let remaining =
      List.map (fun (r : Network.route) -> r.Network.id) (Network.active_routes t)
      |> List.sort Int.compare
    in
    Alcotest.(check (list int)) "only b and the probe remain"
      (List.sort Int.compare [ b.Network.id; probe.Network.id ])
      remaining;
    reconstruct_occupancy t

let test_rearrangement_failure_restores_state () =
  (* Saturate a 1-middle network so even rearrangement cannot help, and
     check nothing changed. *)
  let t = net ~x_limit:1 ~construction:Network.Msw_dominant
      ~output_model:Model.MSW ~n:2 ~m:2 ~r:2 ~k:1 () in
  ignore (check_ok (Network.connect t (conn (ep 1 1) [ ep 4 1 ])));
  ignore (check_ok (Network.connect t (conn (ep 2 1) [ ep 2 1 ])));
  ignore (check_ok (Network.connect t (conn (ep 4 1) [ ep 3 1 ])));
  let before =
    List.map (fun (r : Network.route) -> r.Network.id) (Network.active_routes t)
    |> List.sort Int.compare
  in
  (* probe wants o1+o2 through a single middle; with l1 takeable slots
     all claimed, no victim move can open both on one middle *)
  (match Network.connect_rearrangeable t (conn (ep 3 1) [ ep 1 1 ]) with
  | Ok _ -> () (* if it routes, fine - then state grew by one route *)
  | Error (Network.Blocked _) ->
    let after =
      List.map (fun (r : Network.route) -> r.Network.id) (Network.active_routes t)
      |> List.sort Int.compare
    in
    Alcotest.(check (list int)) "routes untouched" before after
  | Error e -> Alcotest.fail (Format.asprintf "%a" Network.pp_error e));
  reconstruct_occupancy t

(* --- offline scheduler ----------------------------------------------------- *)

let test_scheduler_routes_full_assignments_at_bound () =
  let eval = Conditions.msw_dominant ~n:2 ~r:2 in
  let topo = Topology.make_exn ~n:2 ~m:eval.Conditions.m_min ~r:2 ~k:2 in
  let rng = Random.State.make [| 31 |] in
  for _ = 1 to 25 do
    let t = Network.create ~construction:Network.Msw_dominant
        ~output_model:Model.MSW topo in
    let a =
      Wdm_traffic.Generator.random_full_assignment rng (Topology.spec topo)
        Model.MSW
    in
    match Scheduler.route_assignment t a with
    | Ok outcome ->
      Alcotest.(check int) "first order works at the bound" 1
        outcome.Scheduler.order_attempts;
      Alcotest.(check int) "no rearrangement" 0 outcome.Scheduler.reroutes;
      Alcotest.(check int) "all connections placed"
        (Assignment.size a)
        (List.length outcome.Scheduler.routes)
    | Error e -> Alcotest.fail (Format.asprintf "%a" Network.pp_error e)
  done

let test_scheduler_rejects_unroutable_batch () =
  (* The adversary's m = 2 witness batch is genuinely unroutable with
     the x = 1 strategy: the probe's single middle must carry both
     output modules, leaving the two same-switch unicasts to share one
     remaining middle with k = 1.  The scheduler must fail — with and
     without rearrangement — and leave the network empty. *)
  let topo = Topology.make_exn ~n:2 ~m:2 ~r:2 ~k:1 in
  let a =
    Assignment.make
      [ conn (ep 1 1) [ ep 4 1 ]; conn (ep 2 1) [ ep 2 1 ];
        conn (ep 3 1) [ ep 1 1; ep 3 1 ] ]
  in
  List.iter
    (fun rearrange ->
      let t = Network.create
          ~config:{ Network.Config.default with x_limit = Some 1 }
          ~construction:Network.Msw_dominant
          ~output_model:Model.MSW topo in
      (match Scheduler.route_assignment ~max_order_attempts:6 ~rearrange t a with
      | Error (Network.Blocked _) -> ()
      | Error e -> Alcotest.fail (Format.asprintf "%a" Network.pp_error e)
      | Ok _ -> Alcotest.fail "batch should be unroutable at m = 2, x = 1");
      Alcotest.(check int) "network left empty" 0
        (List.length (Network.active_routes t)))
    [ false; true ];
  (* relaxing the routing strategy to x = 2 makes the same batch
     routable: the probe splits across both middles *)
  let t = Network.create
      ~config:{ Network.Config.default with x_limit = Some 2 }
      ~construction:Network.Msw_dominant
      ~output_model:Model.MSW topo in
  match Scheduler.route_assignment t a with
  | Ok outcome ->
    Alcotest.(check int) "routable at x=2" 3 (List.length outcome.Scheduler.routes)
  | Error e -> Alcotest.fail (Format.asprintf "%a" Network.pp_error e)

let test_scheduler_rearrange_recovers_below_bound () =
  (* Below the theorem bound a fixed-order First_fit pass loses some
     full assignments that are merely order-blocked; rearrangement (one
     move per placement) must recover a share of them, and every outright
     failure must leave the network empty. *)
  let topo = Topology.make_exn ~n:2 ~m:3 ~r:2 ~k:2 in
  let spec = Topology.spec topo in
  let mk () =
    Network.create
      ~config:{ Network.Config.default with strategy = Network.First_fit }
      ~construction:Network.Msw_dominant ~output_model:Model.MSW topo
  in
  let fixed_losses = ref 0 and recovered = ref 0 in
  for seed = 1 to 60 do
    let a =
      Wdm_traffic.Generator.random_full_assignment
        (Random.State.make [| seed |])
        spec Model.MSW
    in
    let t = mk () in
    match Scheduler.route_assignment ~max_order_attempts:1 ~rearrange:false t a with
    | Ok _ -> ()
    | Error _ ->
      incr fixed_losses;
      Alcotest.(check int) "empty after fixed-order failure" 0
        (List.length (Network.active_routes t));
      let t' = mk () in
      (match Scheduler.route_assignment ~max_order_attempts:1 ~rearrange:true t' a with
      | Ok outcome ->
        incr recovered;
        Alcotest.(check bool) "recovery used a rearrangement" true
          (outcome.Scheduler.reroutes > 0);
        Alcotest.(check int) "all connections placed" (Assignment.size a)
          (List.length outcome.Scheduler.routes)
      | Error _ ->
        Alcotest.(check int) "empty after rearranged failure" 0
          (List.length (Network.active_routes t')))
  done;
  Alcotest.(check bool) "fixed order lost some assignments" true
    (!fixed_losses > 0);
  Alcotest.(check bool) "rearrangement recovered some of them" true
    (!recovered > 0)

let test_scheduler_empty_and_validation () =
  let topo = Topology.make_exn ~n:2 ~m:4 ~r:2 ~k:1 in
  let t = Network.create ~construction:Network.Msw_dominant
      ~output_model:Model.MSW topo in
  (match Scheduler.route_assignment t Assignment.empty with
  | Ok { Scheduler.routes = []; _ } -> ()
  | _ -> Alcotest.fail "empty assignment");
  ignore (check_ok (Network.connect t (conn (ep 1 1) [ ep 1 1 ])));
  Alcotest.check_raises "non-empty network"
    (Invalid_argument "Scheduler.route_assignment: network not empty") (fun () ->
      ignore (Scheduler.route_assignment t Assignment.empty))

(* --- exhaustive adversary ------------------------------------------------ *)

let test_adversary_exact_frontier () =
  (* n = r = 2, k = 1: Theorem 1 gives m_min = 4; exhaustive search over
     the whole reachable state space shows the true frontier is m = 2 —
     a blocking witness exists at m = 2 and m = 3 is provably
     nonblocking under the engine's routing.  (Sufficient, not
     necessary, exactly as expected at this tiny size.) *)
  let results =
    Wdm_analysis.Adversary.frontier_exact ~construction:Network.Msw_dominant
      ~output_model:Model.MSW ~n:2 ~r:2 ~k:1 ()
  in
  (match List.assoc_opt 2 results with
  | Some (Wdm_analysis.Adversary.Blocking w) ->
    Alcotest.(check bool) "witness replays" true
      (Wdm_analysis.Adversary.replay ~construction:Network.Msw_dominant
         ~output_model:Model.MSW
         (Topology.make_exn ~n:2 ~m:2 ~r:2 ~k:1)
         w)
  | _ -> Alcotest.fail "expected a blocking witness at m = 2");
  List.iter
    (fun m ->
      match List.assoc_opt m results with
      | Some (Wdm_analysis.Adversary.Nonblocking_proved _) -> ()
      | Some v ->
        Alcotest.fail
          (Format.asprintf "m=%d should be proved nonblocking, got %a" m
             Wdm_analysis.Adversary.pp_verdict v)
      | None -> Alcotest.fail "missing m in frontier")
    [ 3; 4 ]

let test_adversary_maw_dominant_small () =
  (* Same exhaustive treatment for the MAW-dominant construction with
     k = 1 (where it coincides with MSW-dominant behaviourally). *)
  let results =
    Wdm_analysis.Adversary.frontier_exact ~construction:Network.Maw_dominant
      ~output_model:Model.MAW ~n:2 ~r:2 ~k:1 ()
  in
  (match List.assoc_opt 2 results with
  | Some (Wdm_analysis.Adversary.Blocking _) -> ()
  | _ -> Alcotest.fail "expected blocking at m = 2");
  match List.assoc_opt 4 results with
  | Some (Wdm_analysis.Adversary.Nonblocking_proved _) -> ()
  | _ -> Alcotest.fail "expected proof at m = 4"

let test_adversary_budget () =
  let topo = Topology.make_exn ~n:2 ~m:3 ~r:2 ~k:1 in
  match
    Wdm_analysis.Adversary.search ~max_states:5
      ~construction:Network.Msw_dominant ~output_model:Model.MSW topo
  with
  | Wdm_analysis.Adversary.Search_exhausted { states_explored = 5 } -> ()
  | v ->
    Alcotest.fail
      (Format.asprintf "expected exhaustion, got %a"
         Wdm_analysis.Adversary.pp_verdict v)

(* --- property: random topologies at the bound never block ----------------- *)

let prop_random_topologies_nonblocking =
  QCheck.Test.make ~name:"random (n,r,k) at m_min never blocks" ~count:25
    (QCheck.make
       ~print:(fun (n, r, k, seed) -> Printf.sprintf "n=%d r=%d k=%d seed=%d" n r k seed)
       QCheck.Gen.(
         quad (int_range 2 4) (int_range 2 4) (int_range 1 3) (int_range 0 10000)))
    (fun (n, r, k, seed) ->
      let eval = Conditions.msw_dominant ~n ~r in
      let t = net ~construction:Network.Msw_dominant ~output_model:Model.MSW
          ~n ~m:eval.Conditions.m_min ~r ~k () in
      let stats =
        Wdm_traffic.Churn.run
          (Random.State.make [| seed |])
          ~spec:(Topology.spec (Network.topology t)) ~model:Model.MSW
          ~fanout:(Wdm_traffic.Fanout.Zipf { max = n * r; s = 1.0 })
          ~steps:150 ~teardown_bias:0.35 (churn_sut t)
      in
      stats.Wdm_traffic.Churn.blocked = 0)

let () =
  Alcotest.run "wdm_routing"
    [
      ( "routing-basics",
        [
          Alcotest.test_case "unicast route shape" `Quick test_unicast_route_shape;
          Alcotest.test_case "multicast within x" `Quick test_multicast_within_x_limit;
          Alcotest.test_case "disconnect restores" `Quick test_disconnect_restores_state;
          Alcotest.test_case "admission errors" `Quick test_admission_errors;
          Alcotest.test_case "per-wavelength sources" `Quick
            test_duplicate_source_wavelengths_are_independent;
        ] );
      ( "state-invariants",
        [
          Alcotest.test_case "churn occupancy" `Slow test_state_invariant_under_churn;
          Alcotest.test_case "wavelength discipline" `Slow
            test_route_wavelength_discipline;
          Alcotest.test_case "exact fanout cover" `Slow test_route_covers_exact_fanout;
        ] );
      ("nonblocking-theorems", nonblocking_suite);
      ( "blocking-below-bound",
        [ Alcotest.test_case "m = n blocks" `Slow test_blocking_below_bound_exists ] );
      ("fig10", [ Alcotest.test_case "MSW blocks, MAW routes" `Quick test_fig10 ]);
      ( "strategies",
        [
          Alcotest.test_case "all admit easy load" `Slow
            test_strategies_agree_on_feasibility;
          Alcotest.test_case "exhaustive subsumes greedy" `Quick
            test_exhaustive_not_worse_than_greedy;
        ] );
      ("physical-integration", physical_suite);
      ( "physical-stepwise",
        [
          Alcotest.test_case "light verified after every op" `Slow
            test_physical_tracks_every_step;
        ] );
      ( "physical-census",
        [ Alcotest.test_case "counts match Table 2" `Quick test_physical_component_census ]
      );
      ( "fault-injection",
        [
          Alcotest.test_case "fail returns victims" `Quick test_fail_middle_returns_victims;
          Alcotest.test_case "m_min+f tolerates f faults" `Slow
            test_fault_tolerant_provisioning;
          Alcotest.test_case "all failed blocks" `Quick
            test_all_middles_failed_blocks_everything;
          Alcotest.test_case "validation" `Quick test_fail_middle_validation;
        ] );
      ( "rearrangement",
        [
          Alcotest.test_case "unblocks the m=2 witness" `Quick
            test_rearrangement_unblocks;
          Alcotest.test_case "noop when free" `Quick test_rearrangement_noop_when_free;
          Alcotest.test_case "victim keeps its id" `Quick
            test_rearrangement_preserves_victim_id;
          Alcotest.test_case "failure restores state" `Quick
            test_rearrangement_failure_restores_state;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "full assignments at the bound" `Slow
            test_scheduler_routes_full_assignments_at_bound;
          Alcotest.test_case "unroutable batch rejected; x=2 routes it" `Quick
            test_scheduler_rejects_unroutable_batch;
          Alcotest.test_case "rearrangement recovers below the bound" `Slow
            test_scheduler_rearrange_recovers_below_bound;
          Alcotest.test_case "empty & validation" `Quick
            test_scheduler_empty_and_validation;
        ] );
      ("capacity-equality", capacity_equality_suite);
      ( "adversary",
        [
          Alcotest.test_case "exact frontier n=r=2 k=1" `Slow
            test_adversary_exact_frontier;
          Alcotest.test_case "MAW-dominant k=1" `Slow test_adversary_maw_dominant_small;
          Alcotest.test_case "budget respected" `Quick test_adversary_budget;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_random_topologies_nonblocking ] );
    ]
