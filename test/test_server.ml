(* The control-plane service layer: wire codec roundtrips, and the
   acceptance criterion for `wdmnet serve` — a seeded churn driven
   through a loopback server is indistinguishable from the same seed
   driven in-process: byte-identical routes (hop checksums), the same
   admission/refusal tallies, the same telemetry counters, and the
   same whole-state digest, on both link-state implementations. *)

open Wdm_core
open Wdm_multistage
module P = Wdm_persist
module Srv = Wdm_server
module Tel = Wdm_telemetry
module Churn = Wdm_traffic.Churn

let ep port wl = Endpoint.make ~port ~wl
let conn src dests = Connection.make_exn ~source:src ~destinations:dests

(* Undersized below the Theorem-1 minimum so churn produces both
   admissions and refusals — the refusal path must cross the wire too. *)
let topo = Topology.make_exn ~n:3 ~m:4 ~r:3 ~k:2

let make_net ?telemetry impl =
  Network.create
    ~config:{ Network.Config.default with telemetry; link_impl = Some impl }
    ~construction:Network.Msw_dominant ~output_model:Model.MSW topo

let socket_path =
  (* Unix-socket paths are length-limited; keep it in /tmp, unique per
     test-case invocation *)
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "wdmnet_test_%d_%d.sock" (Unix.getpid ()) !counter)

let with_server ?telemetry ?store net f =
  let srv =
    Srv.Server.start ?telemetry ?store ~net (Srv.Server.Unix_socket (socket_path ()))
  in
  Fun.protect ~finally:(fun () -> Srv.Server.stop srv) (fun () -> f srv)

let with_client srv f =
  match Srv.Client.connect (Srv.Server.address srv) with
  | Error e ->
    Alcotest.fail ("client connect: " ^ Srv.Client.error_to_string e)
  | Ok c -> Fun.protect ~finally:(fun () -> Srv.Client.close c) (fun () -> f c)

(* --- codec roundtrips ---------------------------------------------------- *)

let roundtrip_request req =
  let b = Buffer.create 64 in
  P.Resp.encode_request b req;
  let r = P.Wire.reader (Buffer.contents b) in
  let back = P.Resp.decode_request r in
  P.Wire.expect_end r;
  back

let test_request_roundtrip () =
  let c = conn (ep 1 1) [ ep 2 1; ep 5 1 ] in
  List.iter
    (fun req ->
      match (req, roundtrip_request req) with
      | P.Resp.Admit a, P.Resp.Admit b ->
        Alcotest.(check bool) "op" true (P.Op.equal a b)
      | P.Resp.Get_digest, P.Resp.Get_digest
      | P.Resp.Get_stats, P.Resp.Get_stats -> ()
      | _ -> Alcotest.fail "request changed shape over the codec")
    [
      P.Resp.Admit (P.Op.Connect c);
      P.Resp.Admit (P.Op.Disconnect 42);
      P.Resp.Admit (P.Op.Inject_fault (Wdm_faults.Fault.Middle 2));
      P.Resp.Admit
        (P.Op.Clear_fault
           (Wdm_faults.Fault.Stage1_laser { input = 1; middle = 2; wl = 1 }));
      P.Resp.Admit (P.Op.Repair { connection = c; rehomed = true });
      P.Resp.Get_digest;
      P.Resp.Get_stats;
    ]

let test_response_roundtrip () =
  let net = make_net Network.Bitset in
  let route = Result.get_ok (Network.connect net (conn (ep 1 1) [ ep 4 1 ])) in
  let responses =
    [
      P.Resp.Admitted { route; moved = 3 };
      P.Resp.Refused
        (Network.Invalid (Assignment.Source_reused (ep 1 1)));
      P.Resp.Refused
        (Network.Invalid
           (Assignment.Model_violation
              { model = Model.MSW; connection = conn (ep 1 1) [ ep 2 2 ] }));
      P.Resp.Refused (Network.Source_busy (ep 1 1));
      P.Resp.Refused (Network.Destination_busy (ep 2 2));
      P.Resp.Refused (Network.Unserviceable (Wdm_faults.Fault.Middle 1));
      P.Resp.Refused
        (Network.Blocked
           {
             fanout_switches = [ 1; 3 ];
             available_middles = [ 2; 4 ];
             uncovered = [ 3 ];
           });
      P.Resp.Released route;
      P.Resp.Release_failed (Network.Unknown_route 99);
      P.Resp.Release_failed (Network.Already_released 7);
      P.Resp.Fault_applied { torn_down = 2 };
      P.Resp.Fault_cleared;
      P.Resp.Digest_is 123456789;
      P.Resp.Stats_json "{\"a\": 1}";
      P.Resp.Server_error "tea kettle on fire";
    ]
  in
  List.iter
    (fun resp ->
      let b = Buffer.create 64 in
      P.Resp.encode b resp;
      match P.Resp.decode_string (Buffer.contents b) with
      | Ok back ->
        Alcotest.(check bool)
          (Format.asprintf "%a" P.Resp.pp resp)
          true (P.Resp.equal resp back)
      | Error e -> Alcotest.fail e)
    responses

(* --- basic served requests ----------------------------------------------- *)

let test_serve_basic () =
  let net = make_net Network.Bitset in
  with_server net (fun srv ->
      with_client srv (fun c ->
          (* connect, disconnect, double-disconnect: typed results *)
          let route =
            match
              Srv.Client.request c
                (P.Resp.Admit (P.Op.Connect (conn (ep 1 1) [ ep 4 1 ])))
            with
            | Ok (P.Resp.Admitted { route; moved = 0 }) -> route
            | other ->
              Alcotest.fail
                (Format.asprintf "connect: %a"
                   Fmt.(result ~ok:P.Resp.pp ~error:Srv.Client.pp_error)
                   other)
          in
          (* the served route must equal the one the same request yields
             in-process on a twin network *)
          let twin = make_net Network.Bitset in
          let local =
            Result.get_ok (Network.connect twin (conn (ep 1 1) [ ep 4 1 ]))
          in
          Alcotest.(check bool) "route equals in-process twin" true
            (route = local);
          (match
             Srv.Client.request c
               (P.Resp.Admit (P.Op.Disconnect route.Network.id))
           with
          | Ok (P.Resp.Released r) ->
            Alcotest.(check int) "released id" route.Network.id r.Network.id
          | _ -> Alcotest.fail "disconnect");
          (match
             Srv.Client.request c
               (P.Resp.Admit (P.Op.Disconnect route.Network.id))
           with
          | Ok (P.Resp.Release_failed (Network.Already_released id)) ->
            Alcotest.(check int) "already-released id" route.Network.id id
          | _ -> Alcotest.fail "double disconnect should be Already_released");
          (match Srv.Client.request c (P.Resp.Admit (P.Op.Disconnect 999)) with
          | Ok (P.Resp.Release_failed (Network.Unknown_route 999)) -> ()
          | _ -> Alcotest.fail "unknown id should be Unknown_route");
          (* fault round trip *)
          let f = Wdm_faults.Fault.Middle 1 in
          (match Srv.Client.request c (P.Resp.Admit (P.Op.Inject_fault f)) with
          | Ok (P.Resp.Fault_applied { torn_down = 0 }) -> ()
          | _ -> Alcotest.fail "inject");
          (match Srv.Client.request c (P.Resp.Admit (P.Op.Clear_fault f)) with
          | Ok P.Resp.Fault_cleared -> ()
          | _ -> Alcotest.fail "clear");
          (* out-of-range fault indices answer Server_error, and the
             connection survives *)
          (match
             Srv.Client.request c
               (P.Resp.Admit (P.Op.Inject_fault (Wdm_faults.Fault.Middle 99)))
           with
          | Ok (P.Resp.Server_error _) -> ()
          | _ -> Alcotest.fail "bad fault should be Server_error");
          (* digest matches the live network *)
          match Srv.Client.digest c with
          | Ok d -> Alcotest.(check int) "digest" (P.Store.digest net) d
          | Error e -> Alcotest.fail (Srv.Client.error_to_string e)))

let test_malformed_frame_closes_connection () =
  let net = make_net Network.Bitset in
  with_server net (fun srv ->
      let path =
        match Srv.Server.address srv with
        | Srv.Server.Unix_socket p -> p
        | Srv.Server.Tcp _ -> Alcotest.fail "expected unix socket"
      in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX path);
          Srv.Protocol.write_all fd Srv.Protocol.client_hello;
          (match Srv.Protocol.read_exactly fd P.Wire.header_len with
          | Srv.Protocol.Exact hello ->
            Alcotest.(check bool) "server hello" true
              (Result.is_ok (Srv.Protocol.check_server_hello hello))
          | Srv.Protocol.Eof_clean | Srv.Protocol.Eof_torn _ ->
            Alcotest.fail "no server hello");
          (* a well-framed but undecodable payload *)
          Srv.Protocol.send_frame fd "\xEE garbage";
          (match Srv.Protocol.recv_frame fd with
          | Srv.Protocol.Frame payload -> (
            match P.Resp.decode_string payload with
            | Ok (P.Resp.Server_error _) -> ()
            | _ -> Alcotest.fail "expected Server_error response")
          | _ -> Alcotest.fail "expected a response frame");
          (* ... after which the server hangs up *)
          match Srv.Protocol.recv_frame fd with
          | Srv.Protocol.Eof -> ()
          | _ -> Alcotest.fail "expected EOF after protocol violation"))

let test_silent_client_does_not_block_accept () =
  let net = make_net Network.Bitset in
  with_server net (fun srv ->
      let path =
        match Srv.Server.address srv with
        | Srv.Server.Unix_socket p -> p
        | Srv.Server.Tcp _ -> Alcotest.fail "expected unix socket"
      in
      (* a peer that connects and never says hello must not hold the
         accept loop hostage: a later, well-behaved client still gets
         served *)
      let silent = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close silent with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect silent (Unix.ADDR_UNIX path);
          with_client srv (fun c ->
              match Srv.Client.digest c with
              | Ok d ->
                Alcotest.(check int) "digest served" (P.Store.digest net) d
              | Error e -> Alcotest.fail (Srv.Client.error_to_string e))))
(* ... and [with_server]'s finally returning at all is the other half
   of the regression: [stop] must not hang joining an accept thread
   stuck in a handshake read. *)

let test_client_fails_fast_after_transport_error () =
  let net = make_net Network.Bitset in
  let srv = Srv.Server.start ~net (Srv.Server.Unix_socket (socket_path ())) in
  let c =
    match Srv.Client.connect (Srv.Server.address srv) with
    | Ok c -> c
    | Error e ->
      Alcotest.fail ("client connect: " ^ Srv.Client.error_to_string e)
  in
  Srv.Server.stop srv;
  (match Srv.Client.request c P.Resp.Get_digest with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "request against a stopped server should fail");
  (* the transport error must have closed the client: the next request
     fails fast instead of misframing against a dead byte stream *)
  (match Srv.Client.request c P.Resp.Get_digest with
  | Error Srv.Client.Closed -> ()
  | Error e ->
    Alcotest.fail ("expected fail-fast, got: " ^ Srv.Client.error_to_string e)
  | Ok _ -> Alcotest.fail "request after transport error should fail");
  Srv.Client.close c

(* --- socket hardening ----------------------------------------------------- *)

let unix_path srv =
  match Srv.Server.address srv with
  | Srv.Server.Unix_socket p -> p
  | Srv.Server.Tcp _ -> Alcotest.fail "expected unix socket"

let raw_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  Srv.Protocol.write_all fd Srv.Protocol.client_hello;
  (match Srv.Protocol.read_exactly fd P.Wire.header_len with
  | Srv.Protocol.Exact hello ->
    Alcotest.(check bool) "server hello" true
      (Result.is_ok (Srv.Protocol.check_server_hello hello))
  | Srv.Protocol.Eof_clean | Srv.Protocol.Eof_torn _ ->
    Alcotest.fail "no server hello");
  fd

(* A peer that dies mid-frame — complete header promising a payload,
   then EOF — must read as a protocol violation ([Bad], counted in
   [server_malformed_total]), not kill anything server-side: the next
   client is served as if nothing happened. *)
let test_half_frame_then_close () =
  let sink = Tel.Sink.create () in
  let net = make_net Network.Bitset in
  with_server ~telemetry:sink net (fun srv ->
      let fd = raw_connect (unix_path srv) in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* header says 64 payload bytes; send 5 and hang up *)
          let full = P.Wire.frame (String.make 64 'x') in
          Srv.Protocol.write_all fd
            (String.sub full 0 (P.Wire.header_len + 5));
          Unix.shutdown fd Unix.SHUTDOWN_SEND;
          (* the violation is answered (best effort) and the conn closed *)
          (match Srv.Protocol.recv_frame fd with
          | Srv.Protocol.Frame payload -> (
            match P.Resp.decode_string payload with
            | Ok (P.Resp.Server_error _) -> ()
            | _ -> Alcotest.fail "expected Server_error for the torn frame")
          | Srv.Protocol.Eof -> () (* response raced the hangup: fine *)
          | Srv.Protocol.Bad e -> Alcotest.fail ("bad frame back: " ^ e));
          (* server is alive and clean for the next client *)
          with_client srv (fun c ->
              match Srv.Client.digest c with
              | Ok d -> Alcotest.(check int) "still serving" (P.Store.digest net) d
              | Error e -> Alcotest.fail (Srv.Client.error_to_string e))));
  let snap = Tel.Sink.snapshot sink in
  Alcotest.(check int) "malformed counted" 1
    (Option.value ~default:(-1)
       (Tel.Metrics.find_counter snap "server_malformed_total"))

(* The client side of the same coin: a server that closes mid-response
   must surface as a typed [Transport] error (and [Closed] thereafter),
   not a SIGPIPE process death or an escaping exception.  The fake
   server answers the hello, reads the request, then returns half a
   frame header and hangs up. *)
let test_peer_close_mid_request () =
  let path = socket_path () in
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX path);
  Unix.listen listener 1;
  let fake =
    Thread.create
      (fun () ->
        let fd, _ = Unix.accept listener in
        (match Srv.Protocol.read_exactly fd P.Wire.header_len with
        | Srv.Protocol.Exact _ -> ()
        | _ -> ());
        Srv.Protocol.write_all fd Srv.Protocol.server_hello;
        (* swallow the request frame, then tear the response *)
        (match Srv.Protocol.recv_frame fd with
        | Srv.Protocol.Frame _ -> ()
        | _ -> ());
        Srv.Protocol.write_all fd (String.make 3 '\x00');
        Unix.close fd)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Thread.join fake;
      (try Unix.close listener with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let c =
        match Srv.Client.connect (Srv.Server.Unix_socket path) with
        | Ok c -> c
        | Error e ->
          Alcotest.fail ("client connect: " ^ Srv.Client.error_to_string e)
      in
      (match Srv.Client.request c P.Resp.Get_digest with
      | Error (Srv.Client.Transport _) -> ()
      | Error e ->
        Alcotest.fail ("expected Transport, got: " ^ Srv.Client.error_to_string e)
      | Ok _ -> Alcotest.fail "request against a torn response should fail");
      (* the tear closed the client; writes after it must fail fast as
         [Closed], never reach the dead socket (where only the ignored
         SIGPIPE would answer) *)
      (match Srv.Client.request c P.Resp.Get_digest with
      | Error Srv.Client.Closed -> ()
      | Error e ->
        Alcotest.fail ("expected Closed, got: " ^ Srv.Client.error_to_string e)
      | Ok _ -> Alcotest.fail "request after tear should fail");
      Srv.Client.close c)

(* Partial writes: a tiny [SO_SNDBUF] plus a response far bigger than
   it forces the loop through the EAGAIN → write-interest → resume
   cycle, while the client sits on its hands before reading.  The
   frame must still arrive whole and decode. *)
let test_partial_writes_tiny_sndbuf () =
  let net = make_net Network.Bitset in
  let srv =
    Srv.Server.start ~conn_sndbuf:2048 ~net
      (Srv.Server.Unix_socket (socket_path ()))
  in
  Fun.protect
    ~finally:(fun () -> Srv.Server.stop srv)
    (fun () ->
      let fd = raw_connect (unix_path srv) in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let arity = 3000 in
          let b = Buffer.create 1024 in
          P.Resp.encode_request b
            (P.Resp.Batch (List.init arity (fun _ -> P.Resp.Get_digest)));
          Srv.Protocol.send_frame fd (Buffer.contents b);
          (* let the server fill the send buffer and block on EAGAIN *)
          Thread.delay 0.15;
          match Srv.Protocol.recv_frame fd with
          | Srv.Protocol.Frame payload -> (
            match P.Resp.decode_string payload with
            | Ok (P.Resp.Batch_reply rs) ->
              Alcotest.(check int) "reply arity" arity (List.length rs);
              let d = P.Store.digest net in
              List.iter
                (function
                  | P.Resp.Digest_is got ->
                    if got <> d then Alcotest.fail "digest mismatch in batch"
                  | r ->
                    Alcotest.fail
                      (Format.asprintf "unexpected sub-reply %a" P.Resp.pp r))
                rs
            | Ok r ->
              Alcotest.fail
                (Format.asprintf "expected Batch_reply, got %a" P.Resp.pp r)
            | Error e -> Alcotest.fail ("reply did not decode: " ^ e))
          | Srv.Protocol.Eof -> Alcotest.fail "server hung up mid-reply"
          | Srv.Protocol.Bad e -> Alcotest.fail ("torn reply frame: " ^ e)))

(* --- the equivalence criterion ------------------------------------------- *)

let churn_steps = 400
let seed = 20260805

let counters_with_prefix snapshot prefix =
  List.filter_map
    (fun (name, _help, v) ->
      if String.length name >= String.length prefix
         && String.sub name 0 (String.length prefix) = prefix
      then Some (name, v)
      else None)
    snapshot.Tel.Metrics.counters

let inproc_sut net checksum =
  {
    Churn.connect =
      (fun c ->
        match Network.connect net c with
        | Ok route ->
          checksum := P.Op.route_checksum !checksum route;
          Ok route.Network.id
        | Error e -> Error e);
    disconnect = (fun id -> ignore (Network.disconnect net id));
  }

let run_churn ~sink sut =
  Churn.run ~telemetry:sink
    (Random.State.make [| seed |])
    ~spec:(Topology.spec topo) ~model:Model.MSW
    ~fanout:(Wdm_traffic.Fanout.Zipf { max = 6; s = 1.0 })
    ~steps:churn_steps ~teardown_bias:0.3 sut

let test_loopback_equivalence impl () =
  (* in-process reference run *)
  let net_sink_a = Tel.Sink.create () in
  let churn_sink_a = Tel.Sink.create () in
  let net_a = make_net ~telemetry:net_sink_a impl in
  let sum_a = ref 0 in
  let stats_a = run_churn ~sink:churn_sink_a (inproc_sut net_a sum_a) in
  (* same seed, served over the loopback socket *)
  let net_sink_b = Tel.Sink.create () in
  let churn_sink_b = Tel.Sink.create () in
  let net_b = make_net ~telemetry:net_sink_b impl in
  let sum_b = ref 0 in
  let stats_b, digest_b =
    with_server ~telemetry:net_sink_b net_b (fun srv ->
        with_client srv (fun c ->
            let sut =
              Srv.Client.churn_sut
                ~on_admit:(fun route ->
                  sum_b := P.Op.route_checksum !sum_b route)
                c
            in
            let stats = run_churn ~sink:churn_sink_b sut in
            let digest =
              match Srv.Client.digest c with
              | Ok d -> d
              | Error e -> Alcotest.fail (Srv.Client.error_to_string e)
            in
            (stats, digest)))
  in
  (* route-level equivalence: every admitted route is byte-identical *)
  Alcotest.(check int) "route checksums" !sum_a !sum_b;
  (* driver-level equivalence *)
  Alcotest.(check int) "attempts" stats_a.Churn.attempts stats_b.Churn.attempts;
  Alcotest.(check int) "accepted" stats_a.Churn.accepted stats_b.Churn.accepted;
  Alcotest.(check int) "blocked" stats_a.Churn.blocked stats_b.Churn.blocked;
  Alcotest.(check bool) "refusals were exercised" true (stats_a.Churn.blocked > 0);
  Alcotest.(check int) "torn down" stats_a.Churn.torn_down stats_b.Churn.torn_down;
  (* state-level equivalence *)
  Alcotest.(check int) "digest" (P.Store.digest net_a) digest_b;
  (* telemetry equivalence: the network's instruments counted the same
     through the socket as in-process (the server's own server_* series
     live in the same sink; the wdmnet_ prefix selects the network's) *)
  let snap_a = Tel.Sink.snapshot net_sink_a
  and snap_b = Tel.Sink.snapshot net_sink_b in
  Alcotest.(check (list (pair string int)))
    "wdmnet_* counters"
    (counters_with_prefix snap_a "wdmnet_")
    (counters_with_prefix snap_b "wdmnet_");
  let churn_a = Tel.Sink.snapshot churn_sink_a
  and churn_b = Tel.Sink.snapshot churn_sink_b in
  Alcotest.(check (list (pair string int)))
    "churn_* counters"
    (counters_with_prefix churn_a "churn_")
    (counters_with_prefix churn_b "churn_")

(* Pipelining must be invisible to everything but the clock: the same
   seed driven through [churn_sut_pipelined] (disconnects batched into
   the next connect's frame) lands on the same routes, digest, churn
   stats, and server-side request accounting as one-request-per-round-
   trip — a [Batch] counts per sub-request, so even the counters are
   carry-agnostic. *)
let test_pipelined_equivalence () =
  let serve ~pipelined =
    let sink = Tel.Sink.create () in
    let net = make_net ~telemetry:sink Network.Bitset in
    let sum = ref 0 in
    let on_admit route = sum := P.Op.route_checksum !sum route in
    let srv =
      Srv.Server.start ~telemetry:sink ~net
        (Srv.Server.Unix_socket (socket_path ()))
    in
    let stats, digest =
      Fun.protect
        ~finally:(fun () -> Srv.Server.stop srv)
        (fun () ->
          with_client srv (fun c ->
              let sut, flush =
                if pipelined then Srv.Client.churn_sut_pipelined ~on_admit c
                else (Srv.Client.churn_sut ~on_admit c, fun () -> ())
              in
              let stats = run_churn ~sink:(Tel.Sink.create ()) sut in
              flush ();
              match Srv.Client.digest c with
              | Ok d -> (stats, d)
              | Error e -> Alcotest.fail (Srv.Client.error_to_string e)))
    in
    (stats, digest, !sum, Srv.Server.served srv, Tel.Sink.snapshot sink)
  in
  let stats_s, digest_s, sum_s, served_s, snap_s = serve ~pipelined:false in
  let stats_p, digest_p, sum_p, served_p, snap_p = serve ~pipelined:true in
  Alcotest.(check int) "digest" digest_s digest_p;
  Alcotest.(check int) "route checksums" sum_s sum_p;
  Alcotest.(check int) "accepted" stats_s.Churn.accepted stats_p.Churn.accepted;
  Alcotest.(check int) "blocked" stats_s.Churn.blocked stats_p.Churn.blocked;
  Alcotest.(check int) "torn down" stats_s.Churn.torn_down
    stats_p.Churn.torn_down;
  Alcotest.(check int) "served" served_s served_p;
  let counter snap name =
    Option.value ~default:(-1) (Tel.Metrics.find_counter snap name)
  in
  List.iter
    (fun name ->
      Alcotest.(check int) name (counter snap_s name) (counter snap_p name))
    [
      "server_requests_total";
      "server_responses_total";
      "server_clients_total";
      "server_malformed_total";
    ];
  (* the same network-side story, through and through *)
  Alcotest.(check (list (pair string int)))
    "wdmnet_* counters"
    (counters_with_prefix snap_s "wdmnet_")
    (counters_with_prefix snap_p "wdmnet_")

(* EINTR everywhere: an interval timer peppering the process with
   SIGALRM while a churn runs through the socket and a WAL.  Without
   the retry loops in [Protocol.write_all]/[read_exactly] and the WAL
   fsync path, some syscall eventually surfaces [EINTR] and tears a
   healthy connection (or worse, a half-written frame). *)
let test_eintr_storm () =
  let prev_handler = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ())) in
  let interval = { Unix.it_interval = 0.002; it_value = 0.002 } in
  ignore (Unix.setitimer Unix.ITIMER_REAL interval);
  Fun.protect
    ~finally:(fun () ->
      ignore
        (Unix.setitimer Unix.ITIMER_REAL
           { Unix.it_interval = 0.; it_value = 0. });
      Sys.set_signal Sys.sigalrm prev_handler)
    (fun () ->
      let dir = Filename.temp_file "wdmnet_eintr" "" in
      Sys.remove dir;
      Unix.mkdir dir 0o700;
      let wal = Filename.concat dir "eintr.wal" in
      let net = make_net Network.Bitset in
      let store = P.Store.start ~wal net in
      let digest =
        with_server ~store net (fun srv ->
            with_client srv (fun c ->
                ignore
                  (run_churn ~sink:(Tel.Sink.create ()) (Srv.Client.churn_sut c));
                match Srv.Client.digest c with
                | Ok d -> d
                | Error e -> Alcotest.fail (Srv.Client.error_to_string e)))
      in
      P.Store.close store;
      (* same seed in-process: the storm changed nothing *)
      let twin = make_net Network.Bitset in
      ignore (run_churn ~sink:(Tel.Sink.create ()) (inproc_sut twin (ref 0)));
      Alcotest.(check int) "digest through the storm" (P.Store.digest twin)
        digest;
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)

(* The whole point of the event loop: connections are buffers, not
   threads.  Park up to ten thousand idle (hello'd, then silent)
   connections — as many as the fd limit leaves headroom for — check
   the process thread count stayed flat, and serve a request through
   the crowd. *)
let threads_now () =
  (* Linux-only; [None] elsewhere and the assertion is skipped *)
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go () =
          match input_line ic with
          | exception End_of_file -> None
          | line ->
            if String.length line > 8 && String.sub line 0 8 = "Threads:" then
              int_of_string_opt
                (String.trim (String.sub line 8 (String.length line - 8)))
            else go ()
        in
        go ())

let test_idle_connection_soak () =
  let want = 10_000 in
  let target =
    if Srv.Evloop.available_backend () <> "epoll" then 128
      (* select tops out at FD_SETSIZE; the 10k target needs epoll *)
    else
      (* both ends of every parked connection live in this process, so
         each one costs two fds against the limit *)
      let limit = Srv.Evloop.ensure_fd_capacity ((2 * want) + 256) in
      if limit < 0 then 1024 else max 64 (min want ((limit - 256) / 2))
  in
  let baseline = threads_now () in
  let net = make_net Network.Bitset in
  with_server net (fun srv ->
      let path = unix_path srv in
      let idle = ref [] in
      Fun.protect
        ~finally:(fun () ->
          List.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
            !idle)
        (fun () ->
          for _ = 1 to target do
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX path);
            Srv.Protocol.write_all fd Srv.Protocol.client_hello;
            idle := fd :: !idle
          done;
          Alcotest.(check int) "all idle conns held" target
            (List.length !idle);
          (match (baseline, threads_now ()) with
          | Some before, Some after ->
            Alcotest.(check bool)
              (Printf.sprintf "threads bounded (%d before, %d after)" before
                 after)
              true
              (after <= before + 4)
          | _ -> ());
          (* the crowd does not get between a live client and the loop *)
          with_client srv (fun c ->
              match Srv.Client.digest c with
              | Ok d -> Alcotest.(check int) "served through the crowd"
                          (P.Store.digest net) d
              | Error e -> Alcotest.fail (Srv.Client.error_to_string e))))

(* --- WAL-backed serving recovers to the served state ---------------------- *)

let test_served_session_recovers () =
  let dir = Filename.temp_file "wdmnet_serve_wal" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let wal = Filename.concat dir "serve.wal" in
  let net = make_net Network.Bitset in
  let store = P.Store.start ~wal net in
  let final_digest =
    with_server ~store net (fun srv ->
        with_client srv (fun c ->
            let sut = Srv.Client.churn_sut c in
            ignore (run_churn ~sink:(Tel.Sink.create ()) sut);
            match Srv.Client.digest c with
            | Ok d -> d
            | Error e -> Alcotest.fail (Srv.Client.error_to_string e)))
  in
  (* server stopped: no thread touches the store anymore *)
  P.Store.checkpoint store net;
  P.Store.close store;
  (match P.Store.recover ~wal () with
  | Ok r ->
    Alcotest.(check int) "recovered digest" final_digest
      (P.Store.digest r.P.Store.network)
  | Error e -> Alcotest.fail (Format.asprintf "%a" P.Store.pp_recovery_error e));
  Array.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  Unix.rmdir dir

(* A request that fails to execute (refused disconnect, out-of-range
   fault index) is answered but must never reach the WAL: replaying it
   fails, and [Store.recover] reads a failing replay as corruption —
   one such client request would poison the log permanently. *)
let test_failed_ops_do_not_poison_wal () =
  let dir = Filename.temp_file "wdmnet_serve_wal" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let wal = Filename.concat dir "serve.wal" in
  let net = make_net Network.Bitset in
  let store = P.Store.start ~wal net in
  let final_digest =
    with_server ~store net (fun srv ->
        with_client srv (fun c ->
            let admit op = Srv.Client.request c (P.Resp.Admit op) in
            let route =
              match admit (P.Op.Connect (conn (ep 1 1) [ ep 4 1 ])) with
              | Ok (P.Resp.Admitted { route; _ }) -> route
              | _ -> Alcotest.fail "connect"
            in
            (match admit (P.Op.Disconnect route.Network.id) with
            | Ok (P.Resp.Released _) -> ()
            | _ -> Alcotest.fail "disconnect");
            (match admit (P.Op.Disconnect route.Network.id) with
            | Ok (P.Resp.Release_failed (Network.Already_released _)) -> ()
            | _ -> Alcotest.fail "double disconnect");
            (match admit (P.Op.Disconnect 999) with
            | Ok (P.Resp.Release_failed (Network.Unknown_route _)) -> ()
            | _ -> Alcotest.fail "unknown disconnect");
            (match admit (P.Op.Inject_fault (Wdm_faults.Fault.Middle 99)) with
            | Ok (P.Resp.Server_error _) -> ()
            | _ -> Alcotest.fail "bad inject");
            (match admit (P.Op.Clear_fault (Wdm_faults.Fault.Middle 99)) with
            | Ok (P.Resp.Server_error _) -> ()
            | _ -> Alcotest.fail "bad clear");
            (match admit (P.Op.Connect (conn (ep 2 1) [ ep 5 1 ])) with
            | Ok (P.Resp.Admitted _) -> ()
            | _ -> Alcotest.fail "second connect");
            match Srv.Client.digest c with
            | Ok d -> d
            | Error e -> Alcotest.fail (Srv.Client.error_to_string e)))
  in
  P.Store.close store;
  (* no checkpoint after serving: recovery must replay the WAL tail,
     which holds only the three ops that executed *)
  (match P.Store.recover ~wal () with
  | Ok r ->
    Alcotest.(check int) "replayed only executed ops" 3 r.P.Store.replayed;
    Alcotest.(check int) "recovered digest" final_digest
      (P.Store.digest r.P.Store.network)
  | Error e -> Alcotest.fail (Format.asprintf "%a" P.Store.pp_recovery_error e));
  Array.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  Unix.rmdir dir

(* --- server telemetry ----------------------------------------------------- *)

let test_server_instruments () =
  let sink = Tel.Sink.create () in
  let net = make_net Network.Bitset in
  let srv =
    Srv.Server.start ~telemetry:sink ~net
      (Srv.Server.Unix_socket (socket_path ()))
  in
  Fun.protect
    ~finally:(fun () -> Srv.Server.stop srv)
    (fun () ->
      with_client srv (fun c ->
          for i = 1 to 5 do
            ignore
              (Srv.Client.request c
                 (P.Resp.Admit
                    (P.Op.Connect (conn (ep i 1) [ ep ((i mod 9) + 1) 1 ]))))
          done;
          (* the stats request answers this very registry *)
          let js =
            match Srv.Client.stats_json c with
            | Ok s -> s
            | Error e -> Alcotest.fail (Srv.Client.error_to_string e)
          in
          (match Tel.Json.parse js with
          | Ok _ -> ()
          | Error e -> Alcotest.fail ("stats is not JSON: " ^ e));
          Alcotest.(check bool) "stats mentions server_requests_total" true
            (let needle = "server_requests_total" in
             let rec go i =
               i + String.length needle <= String.length js
               && (String.sub js i (String.length needle) = needle || go (i + 1))
             in
             go 0)));
  (* [served] is only specified stable after [stop]: reading it inside
     the session races the admission thread, which increments the
     count just after writing the response the client already saw *)
  Alcotest.(check int) "served" 6 (Srv.Server.served srv);
  let snap = Tel.Sink.snapshot sink in
  let counter name =
    Option.value ~default:(-1) (Tel.Metrics.find_counter snap name)
  in
  Alcotest.(check int) "requests total" 6 (counter "server_requests_total");
  Alcotest.(check int) "responses total" 6 (counter "server_responses_total");
  Alcotest.(check int) "clients total" 1 (counter "server_clients_total");
  Alcotest.(check int) "per-client family" 6
    (counter "server_client_requests_total{client=\"1\"}");
  Alcotest.(check (float 0.01)) "no client left" 0.
    (Option.value ~default:(-1.)
       (Tel.Metrics.find_gauge snap "server_clients_active"))

(* --- observability -------------------------------------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_contains what hay needle =
  Alcotest.(check bool)
    (Printf.sprintf "%s contains %S" what needle)
    true (contains hay needle)

(* A pre-flags client against the new server: bare hello (flags byte
   zero), no span trailer on requests — the request must decode and be
   answered exactly as before the extension existed. *)
let test_old_client_new_server () =
  let net = make_net Network.Bitset in
  with_server ~telemetry:(Tel.Sink.create ()) net (fun srv ->
      let path =
        match Srv.Server.address srv with
        | Srv.Server.Unix_socket p -> p
        | Srv.Server.Tcp _ -> Alcotest.fail "expected unix socket"
      in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX path);
          Srv.Protocol.write_all fd Srv.Protocol.client_hello;
          (match Srv.Protocol.read_exactly fd P.Wire.header_len with
          | Srv.Protocol.Exact hello ->
            Alcotest.(check bool) "server hello valid to an old decoder" true
              (Result.is_ok (Srv.Protocol.check_server_hello hello))
          | Srv.Protocol.Eof_clean | Srv.Protocol.Eof_torn _ ->
            Alcotest.fail "no server hello");
          let b = Buffer.create 16 in
          P.Resp.encode_request b P.Resp.Get_digest;
          Srv.Protocol.send_frame fd (Buffer.contents b);
          match Srv.Protocol.recv_frame fd with
          | Srv.Protocol.Frame payload -> (
            match P.Resp.decode_string payload with
            | Ok (P.Resp.Digest_is d) ->
              Alcotest.(check int) "digest over a span-less connection"
                (P.Store.digest net) d
            | _ -> Alcotest.fail "expected Digest_is")
          | _ -> Alcotest.fail "expected a response frame"))

(* The new client against a pre-flags server: the server's bare hello
   carries no span bit, so the client must not append the trailer —
   proven by the fake server decoding the request and finding the
   payload ends exactly where the request does. *)
let test_new_client_old_server () =
  let path = socket_path () in
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let trailer_clean = ref false in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Unix.bind lfd (Unix.ADDR_UNIX path);
  Unix.listen lfd 1;
  let server =
    Thread.create
      (fun () ->
        let fd, _ = Unix.accept lfd in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            match Srv.Protocol.read_exactly fd P.Wire.header_len with
            | Srv.Protocol.Exact hello
              when Result.is_ok (Srv.Protocol.check_client_hello hello) -> (
              Srv.Protocol.write_all fd Srv.Protocol.server_hello;
              match Srv.Protocol.recv_frame fd with
              | Srv.Protocol.Frame payload ->
                let r = P.Wire.reader payload in
                let _req = P.Resp.decode_request r in
                (match P.Wire.expect_end r with
                | () -> trailer_clean := true
                | exception _ -> ());
                let b = Buffer.create 16 in
                P.Resp.encode b (P.Resp.Digest_is 7);
                Srv.Protocol.write_all fd (P.Wire.frame (Buffer.contents b))
              | _ -> ())
            | _ -> ()))
      ()
  in
  (match Srv.Client.connect (Srv.Server.Unix_socket path) with
  | Error e -> Alcotest.fail (Srv.Client.error_to_string e)
  | Ok c ->
    Fun.protect
      ~finally:(fun () -> Srv.Client.close c)
      (fun () ->
        Alcotest.(check bool) "spans not negotiated" false (Srv.Client.spans c);
        (match Srv.Client.digest c with
        | Ok d -> Alcotest.(check int) "digest answered" 7 d
        | Error e -> Alcotest.fail (Srv.Client.error_to_string e));
        Alcotest.(check bool) "no span id minted" true
          (Srv.Client.last_span c = None)));
  Thread.join server;
  Alcotest.(check bool) "request payload ended exactly at the decoder" true
    !trailer_clean

(* New client, new server: the extension negotiates, the span id the
   client minted is the one the server's ring recorded, stages come
   out in pipeline order, and the Chrome export parses. *)
let test_span_ring_and_chrome () =
  let sink = Tel.Sink.create () in
  let net = make_net Network.Bitset in
  let srv =
    Srv.Server.start ~telemetry:sink ~net
      (Srv.Server.Unix_socket (socket_path ()))
  in
  let client_span =
    Fun.protect
      ~finally:(fun () -> Srv.Server.stop srv)
      (fun () ->
        with_client srv (fun c ->
            Alcotest.(check bool) "spans negotiated" true (Srv.Client.spans c);
            (match Srv.Client.digest c with
            | Ok _ -> ()
            | Error e -> Alcotest.fail (Srv.Client.error_to_string e));
            match Srv.Client.last_span c with
            | Some s -> s
            | None -> Alcotest.fail "no span id minted"))
  in
  (* stopped: the ring is stable *)
  (match Srv.Server.spans srv with
  | [ (Some sid, cid, _start, total, stages) ] ->
    Alcotest.(check int) "ring span id is the client's" client_span sid;
    Alcotest.(check int) "client id" 1 cid;
    Alcotest.(check bool) "total is positive" true (total > 0.);
    Alcotest.(check (list string))
      "stage order"
      [ "decode"; "queue"; "execute"; "wal"; "replicate"; "respond" ]
      (List.map fst stages)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 span, ring has %d" (List.length l)));
  match Tel.Json.parse (Srv.Server.spans_chrome srv) with
  | Ok j ->
    Alcotest.(check bool) "chrome export has traceEvents" true
      (Tel.Json.member "traceEvents" j <> None)
  | Error e -> Alcotest.fail ("chrome trace not JSON: " ^ e)

let http_get addr path =
  let fd, sockaddr =
    match addr with
    | Srv.Server.Tcp (host, port) ->
      ( Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0,
        Unix.ADDR_INET (Unix.inet_addr_of_string host, port) )
    | Srv.Server.Unix_socket p ->
      (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX p)
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd sockaddr;
      Srv.Protocol.write_all fd (Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path);
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
      in
      drain ();
      let s = Buffer.contents buf in
      let status =
        try int_of_string (String.trim (String.sub s 9 3))
        with _ -> Alcotest.fail ("unparseable HTTP response: " ^ s)
      in
      let body =
        let sep = "\r\n\r\n" in
        let rec find i =
          if i + 4 > String.length s then String.length s
          else if String.sub s i 4 = sep then i + 4
          else find (i + 1)
        in
        let at = find 0 in
        String.sub s at (String.length s - at)
      in
      (status, body))

(* /healthz answers plainly; /metrics is the same registry the stats
   request serves, so its counters reconcile exactly with an
   in-process snapshot taken while the server is quiescent. *)
let test_http_plane () =
  let sink = Tel.Sink.create () in
  let net = make_net Network.Bitset in
  let srv =
    Srv.Server.start ~telemetry:sink ~net
      ~http:(Srv.Server.Tcp ("127.0.0.1", 0))
      (Srv.Server.Unix_socket (socket_path ()))
  in
  Fun.protect ~finally:(fun () -> Srv.Server.stop srv) @@ fun () ->
  let http =
    match Srv.Server.http_address srv with
    | Some a -> a
    | None -> Alcotest.fail "no http address"
  in
  let status, body = http_get http "/healthz" in
  Alcotest.(check int) "healthz status" 200 status;
  Alcotest.(check string) "healthz body" "ok\n" body;
  let status, body = http_get http "/readyz" in
  Alcotest.(check int) "leader readyz status" 200 status;
  check_contains "readyz" body "role=leader";
  with_client srv (fun c ->
      for i = 1 to 5 do
        ignore
          (Srv.Client.request c
             (P.Resp.Admit
                (P.Op.Connect (conn (ep i 1) [ ep ((i mod 9) + 1) 1 ]))))
      done);
  (* let the admission thread finish post-response bookkeeping *)
  let deadline = Unix.gettimeofday () +. 5. in
  while Srv.Server.served srv < 5 && Unix.gettimeofday () < deadline do
    Thread.delay 0.002
  done;
  let status, body = http_get http "/metrics" in
  Alcotest.(check int) "metrics status" 200 status;
  let snap = Tel.Sink.snapshot sink in
  let reconcile name =
    match Tel.Metrics.find_counter snap name with
    | Some v -> check_contains "/metrics" body (Printf.sprintf "%s %d" name v)
    | None -> Alcotest.fail (name ^ " not in the in-process registry")
  in
  reconcile "server_requests_total";
  reconcile "server_responses_total";
  reconcile "server_clients_total";
  check_contains "/metrics" body "# TYPE server_stage_execute_seconds histogram";
  check_contains "/metrics" body "server_stage_execute_seconds_count 5";
  check_contains "/metrics" body "server_request_latency_seconds_bucket";
  let status, body = http_get http "/spans" in
  Alcotest.(check int) "spans status" 200 status;
  check_contains "/spans" body "traceEvents";
  let status, _ = http_get http "/nope" in
  Alcotest.(check int) "unknown path" 404 status

(* /readyz follows the replication life cycle: ready once caught up,
   behind when the leader disappears, ready again after promotion. *)
let test_readyz_follows_role () =
  let leader =
    Srv.Server.start ~net:(make_net Network.Bitset)
      (Srv.Server.Unix_socket (socket_path ()))
  in
  let leader_stopped = ref false in
  Fun.protect
    ~finally:(fun () -> if not !leader_stopped then Srv.Server.stop leader)
  @@ fun () ->
  with_client leader (fun c ->
      for i = 1 to 6 do
        ignore
          (Srv.Client.request c
             (P.Resp.Admit
                (P.Op.Connect (conn (ep i 1) [ ep ((i mod 9) + 1) 1 ]))))
      done);
  let follower =
    Srv.Server.start
      ~net:(make_net Network.Bitset)
      ~follower:{ Srv.Server.leader = Srv.Server.address leader; wal = None }
      ~http:(Srv.Server.Tcp ("127.0.0.1", 0))
      (Srv.Server.Unix_socket (socket_path ()))
  in
  Fun.protect ~finally:(fun () -> Srv.Server.stop follower) @@ fun () ->
  let http = Option.get (Srv.Server.http_address follower) in
  let wait_status want =
    let deadline = Unix.gettimeofday () +. 10. in
    let rec go last =
      let status, body = http_get http "/readyz" in
      if status = want then body
      else if Unix.gettimeofday () > deadline then
        Alcotest.fail
          (Printf.sprintf "readyz never reached %d (last %d: %s)" want last
             body)
      else begin
        Thread.delay 0.01;
        go status
      end
    in
    go 0
  in
  let body = wait_status 200 in
  check_contains "caught-up readyz" body "role=follower";
  Alcotest.(check bool) "ready accessor agrees" true (Srv.Server.ready follower);
  Srv.Server.stop leader;
  leader_stopped := true;
  ignore (wait_status 503);
  Alcotest.(check bool) "ready accessor flips" false
    (Srv.Server.ready follower);
  (match Srv.Server.promote follower with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("promote: " ^ e));
  let body = wait_status 200 in
  check_contains "promoted readyz" body "role=leader"

(* The slow-request log: threshold 0 captures every request as a
   parseable JSONL record carrying the span id and the per-stage
   breakdown; an unreachable threshold captures none. *)
let test_slow_log () =
  let run ~slow_ms ~requests =
    let path = Filename.temp_file "wdmnet_slow" ".jsonl" in
    let sink = Tel.Sink.create () in
    let net = make_net Network.Bitset in
    let srv =
      Srv.Server.start ~telemetry:sink ~slow_ms ~slow_log:path ~net
        (Srv.Server.Unix_socket (socket_path ()))
    in
    Fun.protect
      ~finally:(fun () -> Srv.Server.stop srv)
      (fun () ->
        with_client srv (fun c ->
            for i = 1 to requests do
              ignore
                (Srv.Client.request c
                   (P.Resp.Admit
                      (P.Op.Connect (conn (ep i 1) [ ep ((i mod 9) + 1) 1 ]))))
            done));
    (* stop flushed and closed the log *)
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    Sys.remove path;
    List.rev !lines
  in
  let all = run ~slow_ms:0. ~requests:4 in
  Alcotest.(check int) "threshold 0 logs every request" 4 (List.length all);
  List.iter
    (fun line ->
      match Tel.Json.parse line with
      | Ok j ->
        List.iter
          (fun key ->
            Alcotest.(check bool)
              (Printf.sprintf "slow line has %s" key)
              true
              (Tel.Json.member key j <> None))
          [ "ts"; "span"; "client"; "total_ms"; "stages_ms" ]
      | Error e -> Alcotest.fail ("slow line is not JSON: " ^ e))
    all;
  let none = run ~slow_ms:60000. ~requests:4 in
  Alcotest.(check int) "unreachable threshold logs nothing" 0
    (List.length none)

let () =
  Alcotest.run "wdm_server"
    [
      ( "codec",
        [
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
        ] );
      ( "serve",
        [
          Alcotest.test_case "basic requests" `Quick test_serve_basic;
          Alcotest.test_case "malformed frame" `Quick
            test_malformed_frame_closes_connection;
          Alcotest.test_case "silent client" `Quick
            test_silent_client_does_not_block_accept;
          Alcotest.test_case "client fails fast" `Quick
            test_client_fails_fast_after_transport_error;
          Alcotest.test_case "server instruments" `Quick test_server_instruments;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "half frame then close" `Quick
            test_half_frame_then_close;
          Alcotest.test_case "peer close mid-request" `Quick
            test_peer_close_mid_request;
          Alcotest.test_case "partial writes (tiny SO_SNDBUF)" `Quick
            test_partial_writes_tiny_sndbuf;
          Alcotest.test_case "EINTR storm" `Quick test_eintr_storm;
          Alcotest.test_case "idle connection soak" `Quick
            test_idle_connection_soak;
        ] );
      ( "observability",
        [
          Alcotest.test_case "old client, new server" `Quick
            test_old_client_new_server;
          Alcotest.test_case "new client, old server" `Quick
            test_new_client_old_server;
          Alcotest.test_case "span ring + chrome export" `Quick
            test_span_ring_and_chrome;
          Alcotest.test_case "http plane" `Quick test_http_plane;
          Alcotest.test_case "readyz follows role" `Quick
            test_readyz_follows_role;
          Alcotest.test_case "slow-request log" `Quick test_slow_log;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "loopback churn (bitset)" `Quick
            (test_loopback_equivalence Network.Bitset);
          Alcotest.test_case "loopback churn (reference)" `Quick
            (test_loopback_equivalence Network.Reference);
          Alcotest.test_case "pipelined churn" `Quick test_pipelined_equivalence;
          Alcotest.test_case "served session recovers" `Quick
            test_served_session_recovers;
          Alcotest.test_case "failed ops not WAL-logged" `Quick
            test_failed_ops_do_not_poison_wal;
        ] );
    ]
