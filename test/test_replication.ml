(* Replication and failover: the repl codec and follower mark, a
   follower catching up over the wire and serving reads, slow-follower
   eviction, client deadlines, WAL append-resume, and the headline
   acceptance test — kill the leader mid-churn at an op boundary,
   promote the follower, let the self-healing client redirect, and the
   final digest equals an uninterrupted single-server run. *)

open Wdm_core
open Wdm_multistage
module P = Wdm_persist
module Srv = Wdm_server
module Tel = Wdm_telemetry
module Churn = Wdm_traffic.Churn

let ep port wl = Endpoint.make ~port ~wl
let conn src dests = Connection.make_exn ~source:src ~destinations:dests

(* Undersized below the Theorem-1 minimum so churn produces both
   admissions and refusals — refused connects are committed ops too,
   and must replicate. *)
let topo = Topology.make_exn ~n:3 ~m:4 ~r:3 ~k:2

let make_net ?telemetry impl =
  Network.create
    ~config:{ Network.Config.default with telemetry; link_impl = Some impl }
    ~construction:Network.Msw_dominant ~output_model:Model.MSW topo

let socket_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "wdmnet_repl_%d_%d.sock" (Unix.getpid ()) !counter)

let sock () = Srv.Server.Unix_socket (socket_path ())

let temp_dir () =
  let dir = Filename.temp_file "wdmnet_repl" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  dir

let rm_rf dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

let wait_for ?(timeout = 10.0) pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    pred ()
    || (Unix.gettimeofday () -. t0 < timeout)
       && begin
            Thread.delay 0.01;
            go ()
          end
  in
  go ()

let with_client srv f =
  match Srv.Client.connect (Srv.Server.address srv) with
  | Error e ->
    Alcotest.fail ("client connect: " ^ Srv.Client.error_to_string e)
  | Ok c -> Fun.protect ~finally:(fun () -> Srv.Client.close c) (fun () -> f c)

let counter_of sink name =
  Option.value ~default:0 (Tel.Metrics.find_counter (Tel.Sink.snapshot sink) name)

(* --- codec roundtrips ---------------------------------------------------- *)

let test_to_leader_roundtrip () =
  List.iter
    (fun msg ->
      let b = Buffer.create 32 in
      P.Repl.encode_to_leader b msg;
      match P.Repl.to_leader_of_string (Buffer.contents b) with
      | Ok back ->
        Alcotest.(check string)
          "to_leader"
          (Format.asprintf "%a" P.Repl.pp_to_leader msg)
          (Format.asprintf "%a" P.Repl.pp_to_leader back)
      | Error e -> Alcotest.fail e)
    [
      P.Repl.Subscribe { epoch = 0; last_seq = -1 };
      P.Repl.Subscribe { epoch = 123456789; last_seq = 42 };
      P.Repl.Ack { seq = 7; digest = 987654321 };
    ]

let test_to_follower_roundtrip () =
  let c = conn (ep 1 1) [ ep 2 1; ep 5 1 ] in
  List.iter
    (fun msg ->
      let b = Buffer.create 64 in
      P.Repl.encode_to_follower b msg;
      match P.Repl.to_follower_of_string (Buffer.contents b) with
      | Ok back ->
        Alcotest.(check string)
          "to_follower"
          (Format.asprintf "%a" P.Repl.pp_to_follower msg)
          (Format.asprintf "%a" P.Repl.pp_to_follower back)
      | Error e -> Alcotest.fail e)
    [
      P.Repl.Init_snapshot { epoch = 5; seq = 10; state = "\x00\x01binary" };
      P.Repl.Init_resume { epoch = 5; seq = 10 };
      P.Repl.Rep_op { seq = 11; op = P.Op.Connect c };
      P.Repl.Rep_op { seq = 12; op = P.Op.Disconnect 3 };
      P.Repl.Rep_digest { seq = 64; digest = 123456 };
      P.Repl.Goodbye { reason = "slow follower" };
    ]

let test_promote_request_roundtrip () =
  let b = Buffer.create 16 in
  P.Resp.encode_request b P.Resp.Promote;
  let r = P.Wire.reader (Buffer.contents b) in
  (match P.Resp.decode_request r with
  | P.Resp.Promote -> ()
  | _ -> Alcotest.fail "Promote changed shape over the codec");
  P.Wire.expect_end r;
  List.iter
    (fun resp ->
      let b = Buffer.create 32 in
      P.Resp.encode b resp;
      match P.Resp.decode_string (Buffer.contents b) with
      | Ok back ->
        Alcotest.(check bool)
          (Format.asprintf "%a" P.Resp.pp resp)
          true (P.Resp.equal resp back)
      | Error e -> Alcotest.fail e)
    [
      P.Resp.Not_leader { leader = "tcp:10.0.0.1:7000" };
      P.Resp.Not_leader { leader = "" };
      P.Resp.Promoted { seq = 12345 };
    ]

let test_mark_roundtrip () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let wal = Filename.concat dir "follower.wal" in
  Alcotest.(check bool) "no mark yet" true (P.Repl.load_mark ~wal = None);
  P.Repl.save_mark ~wal { P.Repl.epoch = 77; base_seq = 42 };
  (match P.Repl.load_mark ~wal with
  | Some { P.Repl.epoch = 77; base_seq = 42 } -> ()
  | Some m ->
    Alcotest.fail
      (Printf.sprintf "wrong mark: epoch %d base %d" m.P.Repl.epoch
         m.P.Repl.base_seq)
  | None -> Alcotest.fail "mark did not load");
  (* overwrite is atomic and wins *)
  P.Repl.save_mark ~wal { P.Repl.epoch = 78; base_seq = 100 };
  (match P.Repl.load_mark ~wal with
  | Some { P.Repl.epoch = 78; base_seq = 100 } -> ()
  | _ -> Alcotest.fail "overwritten mark did not load");
  (* damage reads as None, never an exception *)
  let oc = open_out (P.Repl.mark_path ~wal) in
  output_string oc "not a mark file";
  close_out oc;
  Alcotest.(check bool) "corrupt mark is None" true
    (P.Repl.load_mark ~wal = None);
  P.Repl.remove_mark ~wal;
  Alcotest.(check bool) "removed" true (P.Repl.load_mark ~wal = None);
  (* removing a removed mark is fine *)
  P.Repl.remove_mark ~wal

(* --- follower catch-up over the wire -------------------------------------- *)

let churn_steps = 400
let seed = 20260807

let run_churn ~sink sut =
  Churn.run ~telemetry:sink
    (Random.State.make [| seed |])
    ~spec:(Topology.spec topo) ~model:Model.MSW
    ~fanout:(Wdm_traffic.Fanout.Zipf { max = 6; s = 1.0 })
    ~steps:churn_steps ~teardown_bias:0.3 sut

let inproc_sut net checksum =
  {
    Churn.connect =
      (fun c ->
        match Network.connect net c with
        | Ok route ->
          checksum := P.Op.route_checksum !checksum route;
          Ok route.Network.id
        | Error e -> Error e);
    disconnect = (fun id -> ignore (Network.disconnect net id));
  }

let test_follower_catches_up () =
  let leader_sink = Tel.Sink.create () in
  let follower_sink = Tel.Sink.create () in
  let leader =
    Srv.Server.start ~telemetry:leader_sink ~digest_every:32
      ~net:(make_net Network.Bitset) (sock ())
  in
  Fun.protect ~finally:(fun () -> Srv.Server.stop leader) @@ fun () ->
  let follower =
    Srv.Server.start ~telemetry:follower_sink
      ~follower:{ Srv.Server.leader = Srv.Server.address leader; wal = None }
      ~net:(make_net Network.Bitset) (sock ())
  in
  Fun.protect ~finally:(fun () -> Srv.Server.stop follower) @@ fun () ->
  Alcotest.(check bool) "follower role" true
    (Srv.Server.role follower = Srv.Server.Follower);
  Alcotest.(check bool) "leader role" true
    (Srv.Server.role leader = Srv.Server.Leader);
  (* wait for the subscription handshake (snapshot sent) before the
     churn starts, so every churn op travels the stream — otherwise
     early ops ride the snapshot and the sent-ops counter undershoots *)
  Alcotest.(check bool) "follower linked" true
    (wait_for (fun () ->
         counter_of leader_sink "repl_snapshots_sent_total" >= 1));
  (* drive a seeded churn against the leader *)
  with_client leader (fun c ->
      ignore (run_churn ~sink:(Tel.Sink.create ()) (Srv.Client.churn_sut c)));
  let target = Srv.Server.applied leader in
  Alcotest.(check bool) "leader committed ops" true (target > 0);
  (* the follower converges to the same op count and the same state *)
  Alcotest.(check bool) "follower caught up" true
    (wait_for (fun () -> Srv.Server.applied follower >= target));
  let leader_digest = with_client leader Srv.Client.digest in
  let follower_digest = with_client follower Srv.Client.digest in
  (match (leader_digest, follower_digest) with
  | Ok a, Ok b -> Alcotest.(check int) "digest equal across roles" a b
  | _ -> Alcotest.fail "digest request failed");
  (* a mutation at the follower is refused with a typed redirect *)
  with_client follower (fun c ->
      match
        Srv.Client.request c
          (P.Resp.Admit (P.Op.Connect (conn (ep 1 1) [ ep 4 1 ])))
      with
      | Ok (P.Resp.Not_leader _) -> ()
      | Ok resp ->
        Alcotest.fail
          (Format.asprintf "expected Not_leader, got %a" P.Resp.pp resp)
      | Error e -> Alcotest.fail (Srv.Client.error_to_string e));
  (* promoting the leader itself is refused *)
  with_client leader (fun c ->
      match Srv.Client.promote c with
      | Error (Srv.Client.Protocol _) -> ()
      | Ok _ -> Alcotest.fail "promoting the leader should fail"
      | Error e -> Alcotest.fail (Srv.Client.error_to_string e));
  (* telemetry: the leader counted the stream, the follower the applies *)
  Alcotest.(check int) "one snapshot sent" 1
    (counter_of leader_sink "repl_snapshots_sent_total");
  Alcotest.(check bool) "ops streamed" true
    (counter_of leader_sink "repl_ops_sent_total" >= target);
  Alcotest.(check int) "one snapshot received" 1
    (counter_of follower_sink "repl_snapshots_received_total");
  Alcotest.(check bool) "digests verified" true
    (counter_of leader_sink "repl_digest_checks_total" > 0);
  Alcotest.(check int) "no digest failures" 0
    (counter_of leader_sink "repl_digest_failures_total");
  Alcotest.(check int) "no follower mismatches" 0
    (counter_of follower_sink "repl_digest_mismatch_total")

(* --- slow-follower eviction ----------------------------------------------- *)

(* A fake follower: subscribes, reads the snapshot, then goes silent.
   The leader's outbox (capped tight here) fills behind the tiny
   SO_SNDBUF and the leader must evict — admission never stalls. *)
let test_slow_follower_eviction () =
  let sink = Tel.Sink.create () in
  let srv =
    Srv.Server.start ~telemetry:sink ~outbox_capacity:8 ~follower_sndbuf:4096
      ~net:(make_net Network.Bitset) (sock ())
  in
  Fun.protect ~finally:(fun () -> Srv.Server.stop srv) @@ fun () ->
  let path =
    match Srv.Server.address srv with
    | Srv.Server.Unix_socket p -> p
    | Srv.Server.Tcp _ -> Alcotest.fail "expected unix socket"
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX path);
  Srv.Protocol.write_all fd Srv.Protocol.follower_hello;
  (match Srv.Protocol.read_exactly fd P.Wire.header_len with
  | Srv.Protocol.Exact hello ->
    Alcotest.(check bool) "server hello" true
      (Result.is_ok (Srv.Protocol.check_server_hello hello))
  | Srv.Protocol.Eof_clean | Srv.Protocol.Eof_torn _ ->
    Alcotest.fail "no server hello");
  let b = Buffer.create 32 in
  P.Repl.encode_to_leader b (P.Repl.Subscribe { epoch = 0; last_seq = -1 });
  Srv.Protocol.send_frame fd (Buffer.contents b);
  (match Srv.Protocol.recv_frame fd with
  | Srv.Protocol.Frame payload -> (
    match P.Repl.to_follower_of_string payload with
    | Ok (P.Repl.Init_snapshot _) -> ()
    | Ok msg ->
      Alcotest.fail
        (Format.asprintf "expected Init_snapshot, got %a" P.Repl.pp_to_follower
           msg)
    | Error e -> Alcotest.fail e)
  | _ -> Alcotest.fail "no init frame");
  (* ... and now the fake follower never reads again *)
  with_client srv (fun c ->
      let connection = conn (ep 1 1) [ ep 4 1 ] in
      let evicted = ref false in
      let rounds = ref 0 in
      while (not !evicted) && !rounds < 20_000 do
        incr rounds;
        (match Srv.Client.request c (P.Resp.Admit (P.Op.Connect connection)) with
        | Ok (P.Resp.Admitted { route; _ }) ->
          ignore
            (Srv.Client.request c
               (P.Resp.Admit (P.Op.Disconnect route.Network.id)))
        | Ok _ -> ()
        | Error e -> Alcotest.fail (Srv.Client.error_to_string e));
        if !rounds mod 50 = 0 then
          evicted := counter_of sink "repl_evictions_total" > 0
      done;
      Alcotest.(check bool) "slow follower evicted" true
        (!evicted || counter_of sink "repl_evictions_total" > 0);
      (* the leader kept serving throughout and still answers *)
      match Srv.Client.digest c with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Srv.Client.error_to_string e))

(* --- client deadlines ------------------------------------------------------ *)

let test_connect_timeout () =
  (* a listener that never completes the handshake: the dial succeeds,
     the hello read must hit the deadline, not hang *)
  let path = socket_path () in
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Unix.bind lfd (Unix.ADDR_UNIX path);
  Unix.listen lfd 8;
  let t0 = Unix.gettimeofday () in
  match Srv.Client.connect ~deadline:0.2 (Srv.Server.Unix_socket path) with
  | Error Srv.Client.Timeout ->
    Alcotest.(check bool) "timed out promptly" true
      (Unix.gettimeofday () -. t0 < 5.0)
  | Ok c ->
    Srv.Client.close c;
    Alcotest.fail "handshake against a mute listener should time out"
  | Error e ->
    Alcotest.fail ("expected Timeout, got: " ^ Srv.Client.error_to_string e)

let test_request_timeout_closes_client () =
  (* a server that handshakes, then sits on the request *)
  let path = socket_path () in
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX path);
  Unix.listen lfd 1;
  let server =
    Thread.create
      (fun () ->
        let fd, _ = Unix.accept lfd in
        (match Srv.Protocol.read_exactly fd P.Wire.header_len with
        | Srv.Protocol.Exact _ ->
          Srv.Protocol.write_all fd Srv.Protocol.server_hello;
          (* hold the connection open well past the client deadline *)
          Thread.delay 0.6
        | Srv.Protocol.Eof_clean | Srv.Protocol.Eof_torn _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      (try Sys.remove path with Sys_error _ -> ());
      Thread.join server)
  @@ fun () ->
  match Srv.Client.connect (Srv.Server.Unix_socket path) with
  | Error e -> Alcotest.fail ("connect: " ^ Srv.Client.error_to_string e)
  | Ok c ->
    (match Srv.Client.request ~deadline:0.2 c P.Resp.Get_digest with
    | Error Srv.Client.Timeout -> ()
    | Ok _ -> Alcotest.fail "unanswered request should time out"
    | Error e ->
      Alcotest.fail ("expected Timeout, got: " ^ Srv.Client.error_to_string e));
    (* the deadline expiring mid-exchange desyncs the stream: the
       client must be closed, and say so *)
    (match Srv.Client.request c P.Resp.Get_digest with
    | Error Srv.Client.Closed -> ()
    | _ -> Alcotest.fail "client should fail fast after a timeout");
    Srv.Client.close c

(* --- store resume and WAL truncation -------------------------------------- *)

let test_store_resume_continues_wal () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let wal = Filename.concat dir "resume.wal" in
  let net = make_net Network.Bitset in
  let store = P.Store.start ~wal net in
  let log op =
    ignore (P.Op.apply net op);
    P.Store.log store op
  in
  log (P.Op.Connect (conn (ep 1 1) [ ep 4 1 ]));
  log (P.Op.Connect (conn (ep 2 1) [ ep 5 1 ]));
  P.Store.close store;
  (* reopen the same WAL in append mode *)
  match P.Store.resume ~wal () with
  | Error e -> Alcotest.fail (Format.asprintf "%a" P.Store.pp_recovery_error e)
  | Ok (store2, r) ->
    Alcotest.(check int) "replayed the tail" 2 r.P.Store.replayed;
    Alcotest.(check int) "same state" (P.Store.digest net)
      (P.Store.digest r.P.Store.network);
    Alcotest.(check int) "record count continues" 2
      (P.Store.wal_records store2);
    let net2 = r.P.Store.network in
    ignore (P.Op.apply net2 (P.Op.Connect (conn (ep 3 1) [ ep 6 1 ])));
    P.Store.log store2 (P.Op.Connect (conn (ep 3 1) [ ep 6 1 ]));
    Alcotest.(check int) "appended" 3 (P.Store.wal_records store2);
    let final = P.Store.digest net2 in
    P.Store.close store2;
    (* the continued WAL recovers to the continued state *)
    (match P.Store.recover ~wal () with
    | Ok r2 ->
      Alcotest.(check int) "recovered digest" final
        (P.Store.digest r2.P.Store.network)
    | Error e ->
      Alcotest.fail (Format.asprintf "%a" P.Store.pp_recovery_error e))

let test_wal_truncate_fsyncs_the_cut () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path = Filename.concat dir "torn.wal" in
  let w = P.Wal.create path in
  P.Wal.append w (P.Op.Connect (conn (ep 1 1) [ ep 4 1 ]));
  P.Wal.append w (P.Op.Disconnect 0);
  P.Wal.close w;
  (* graft a torn record on the end *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o600 path in
  output_string oc "\x40\x00\x00\x00\xde\xad";
  close_out oc;
  let tear =
    match P.Wal.read path with
    | Ok { P.Wal.ops; tear = Some off } ->
      Alcotest.(check int) "intact records" 2 (List.length ops);
      off
    | Ok { tear = None; _ } -> Alcotest.fail "tear not detected"
    | Error e -> Alcotest.fail e
  in
  P.Wal.truncate_at path tear;
  Alcotest.(check int) "file cut at the tear" tear
    (Unix.stat path).Unix.st_size;
  (match P.Wal.read path with
  | Ok { P.Wal.ops; tear = None } ->
    Alcotest.(check int) "records survive the cut" 2 (List.length ops)
  | Ok { tear = Some _; _ } -> Alcotest.fail "tear survived truncation"
  | Error e -> Alcotest.fail e);
  (* and the truncated WAL accepts appends again *)
  let w2 = P.Wal.open_append ~records:2 path in
  P.Wal.append w2 (P.Op.Disconnect 1);
  Alcotest.(check int) "count seeded" 3 (P.Wal.records w2);
  P.Wal.close w2;
  match P.Wal.read path with
  | Ok { P.Wal.ops; tear = None } ->
    Alcotest.(check int) "appended past the cut" 3 (List.length ops)
  | Ok { tear = Some _; _ } -> Alcotest.fail "append left a tear"
  | Error e -> Alcotest.fail e

(* --- the acceptance test: failover under churn ----------------------------- *)

let test_failover_preserves_state () =
  (* reference: the same seeded churn, one process, no failover *)
  let ref_net = make_net Network.Bitset in
  let ref_sum = ref 0 in
  let ref_stats =
    run_churn ~sink:(Tel.Sink.create ()) (inproc_sut ref_net ref_sum)
  in
  let ref_digest = P.Store.digest ref_net in
  (* system under test: leader + follower, leader dies mid-run *)
  let leader =
    Srv.Server.start ~digest_every:16 ~net:(make_net Network.Bitset) (sock ())
  in
  let follower =
    Srv.Server.start
      ~follower:{ Srv.Server.leader = Srv.Server.address leader; wal = None }
      ~net:(make_net Network.Bitset) (sock ())
  in
  Fun.protect ~finally:(fun () -> Srv.Server.stop follower) @@ fun () ->
  let rc =
    Srv.Resilient.create ~dial_timeout:2.0 ~deadline:10.0
      [ Srv.Server.address leader; Srv.Server.address follower ]
  in
  Fun.protect ~finally:(fun () -> Srv.Resilient.close rc) @@ fun () ->
  let sum = ref 0 in
  let base =
    Srv.Resilient.churn_sut
      ~on_admit:(fun route -> sum := P.Op.route_checksum !sum route)
      rc
  in
  (* kill the leader at the 200th sut call — an op boundary: the
     graceful stop answers everything already executed, so the client
     never replays an applied op against the new leader *)
  let calls = ref 0 in
  let kill_at = 200 in
  let failover () =
    incr calls;
    if !calls = kill_at then begin
      Srv.Server.stop leader;
      let target = Srv.Server.applied leader in
      Alcotest.(check bool)
        "follower caught up before promotion" true
        (wait_for (fun () -> Srv.Server.applied follower >= target));
      match Srv.Server.promote follower with
      | Ok seq -> Alcotest.(check int) "promoted at the leader's seq" target seq
      | Error e -> Alcotest.fail ("promote: " ^ e)
    end
  in
  let sut =
    {
      Churn.connect =
        (fun c ->
          failover ();
          base.Churn.connect c);
      disconnect =
        (fun id ->
          failover ();
          base.Churn.disconnect id);
    }
  in
  let stats = run_churn ~sink:(Tel.Sink.create ()) sut in
  Alcotest.(check bool) "failover actually happened" true (!calls > kill_at);
  Alcotest.(check bool) "client healed itself" true
    (Srv.Resilient.reconnects rc > 0);
  Alcotest.(check bool) "new leader accepted mutations" true
    (Srv.Server.role follower = Srv.Server.Leader);
  (* the interrupted run is indistinguishable from the uninterrupted
     one: same driver tallies, same routes, same final state *)
  Alcotest.(check int) "attempts" ref_stats.Churn.attempts stats.Churn.attempts;
  Alcotest.(check int) "accepted" ref_stats.Churn.accepted stats.Churn.accepted;
  Alcotest.(check int) "blocked" ref_stats.Churn.blocked stats.Churn.blocked;
  Alcotest.(check int) "torn down" ref_stats.Churn.torn_down
    stats.Churn.torn_down;
  Alcotest.(check int) "route checksums" !ref_sum !sum;
  match Srv.Resilient.digest rc with
  | Ok d -> Alcotest.(check int) "digest equals uninterrupted run" ref_digest d
  | Error e -> Alcotest.fail (Srv.Client.error_to_string e)

(* A follower with its own WAL restarts from disk (mark + WAL) and
   resumes the stream instead of refetching a snapshot. *)
let test_follower_wal_resume () =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let wal = Filename.concat dir "follower.wal" in
  let leader_sink = Tel.Sink.create () in
  let leader =
    Srv.Server.start ~telemetry:leader_sink ~net:(make_net Network.Bitset)
      (sock ())
  in
  Fun.protect ~finally:(fun () -> Srv.Server.stop leader) @@ fun () ->
  let follower_cfg =
    { Srv.Server.leader = Srv.Server.address leader; wal = Some wal }
  in
  let follower =
    Srv.Server.start ~follower:follower_cfg ~net:(make_net Network.Bitset)
      (sock ())
  in
  (* phase 1: commit some ops, let the follower persist them *)
  with_client leader (fun c ->
      List.iter
        (fun op -> ignore (Srv.Client.request c (P.Resp.Admit op)))
        [
          P.Op.Connect (conn (ep 1 1) [ ep 4 1 ]);
          P.Op.Connect (conn (ep 2 1) [ ep 5 1 ]);
          P.Op.Connect (conn (ep 3 1) [ ep 6 1 ]);
        ]);
  let target = Srv.Server.applied leader in
  Alcotest.(check bool) "follower caught up" true
    (wait_for (fun () -> Srv.Server.applied follower >= target));
  Srv.Server.stop follower;
  (match Srv.Server.current_store follower with
  | Some store -> P.Store.close store
  | None -> Alcotest.fail "follower with a wal should own a store");
  Alcotest.(check bool) "mark persisted" true (P.Repl.load_mark ~wal <> None);
  (* phase 2: more ops while the follower is down *)
  with_client leader (fun c ->
      ignore (Srv.Client.request c (P.Resp.Admit (P.Op.Disconnect 0))));
  let target2 = Srv.Server.applied leader in
  (* phase 3: restart from disk — the leader must answer with a
     resume, not a snapshot *)
  let snapshots_before = counter_of leader_sink "repl_snapshots_sent_total" in
  let follower2 =
    Srv.Server.start ~follower:follower_cfg ~net:(make_net Network.Bitset)
      (sock ())
  in
  Fun.protect
    ~finally:(fun () ->
      Srv.Server.stop follower2;
      match Srv.Server.current_store follower2 with
      | Some store -> P.Store.close store
      | None -> ())
  @@ fun () ->
  Alcotest.(check bool) "restarted follower caught up" true
    (wait_for (fun () -> Srv.Server.applied follower2 >= target2));
  Alcotest.(check bool) "leader resumed, no new snapshot" true
    (wait_for (fun () -> counter_of leader_sink "repl_resumes_total" > 0));
  Alcotest.(check int) "snapshot count unchanged" snapshots_before
    (counter_of leader_sink "repl_snapshots_sent_total");
  let leader_digest = with_client leader Srv.Client.digest in
  let follower_digest = with_client follower2 Srv.Client.digest in
  match (leader_digest, follower_digest) with
  | Ok a, Ok b -> Alcotest.(check int) "digest equal after resume" a b
  | _ -> Alcotest.fail "digest request failed"

let () =
  Alcotest.run "wdm_replication"
    [
      ( "codec",
        [
          Alcotest.test_case "to_leader roundtrip" `Quick
            test_to_leader_roundtrip;
          Alcotest.test_case "to_follower roundtrip" `Quick
            test_to_follower_roundtrip;
          Alcotest.test_case "promote request/response" `Quick
            test_promote_request_roundtrip;
          Alcotest.test_case "follower mark" `Quick test_mark_roundtrip;
        ] );
      ( "replication",
        [
          Alcotest.test_case "follower catches up" `Quick
            test_follower_catches_up;
          Alcotest.test_case "slow follower evicted" `Quick
            test_slow_follower_eviction;
          Alcotest.test_case "follower wal resume" `Quick
            test_follower_wal_resume;
        ] );
      ( "client",
        [
          Alcotest.test_case "connect timeout" `Quick test_connect_timeout;
          Alcotest.test_case "request timeout closes client" `Quick
            test_request_timeout_closes_client;
        ] );
      ( "store",
        [
          Alcotest.test_case "resume continues the WAL" `Quick
            test_store_resume_continues_wal;
          Alcotest.test_case "truncate fsyncs the cut" `Quick
            test_wal_truncate_fsyncs_the_cut;
        ] );
      ( "failover",
        [
          Alcotest.test_case "kill leader, promote, same digest" `Quick
            test_failover_preserves_state;
        ] );
    ]
